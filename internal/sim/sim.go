// Package sim provides primitive types shared by every component of the
// ZeroDEV chip-multiprocessor simulator: the cycle clock, a deterministic
// pseudo-random number generator used by workload synthesis and replacement
// tie-breaking, and the min-clock core scheduler that interleaves per-core
// execution.
package sim

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Cycle is a point on (or a span of) the global clock, measured in core
// clock cycles of the simulated CMP.
type Cycle uint64

// MaxCycle is a sentinel larger than any reachable simulation time.
const MaxCycle = Cycle(^uint64(0))

// Clocked is any agent that owns a local clock and can perform a unit of
// work when scheduled. The scheduler always runs the agent with the
// smallest Now; this interleaving approximates concurrent execution while
// keeping the simulation fully deterministic.
type Clocked interface {
	// Now reports the agent's local time; after the agent finishes it
	// keeps reporting the final time.
	Now() Cycle
	// Step performs one unit of work (typically: run until the next memory
	// access completes) and advances the local clock. Step must not be
	// called after Now returns MaxCycle.
	Step()
	// Done reports whether the agent has retired its whole stream.
	Done() bool
}

// RunAll interleaves agents by smallest local clock until every agent is
// done. It returns the largest local clock observed, i.e. the parallel
// completion time of the slowest agent.
func RunAll(agents []Clocked) Cycle {
	last, _ := Drive(agents, nil)
	return last
}

// CancelEvery is the cooperative cancellation interval: a simulation
// driven through ContextHook observes context cancellation within this
// many scheduler steps, so even a multi-million-step unit aborts with
// bounded latency while the per-step overhead stays one modulo test.
const CancelEvery = 1024

// ContextHook wraps an optional Drive hook with cooperative
// cancellation and progress accounting: it publishes the step count to
// steps on every call (when non-nil, read by the harness watchdog for
// diagnostics — an uncontended atomic store costs ~1 ns against a
// protocol transaction costing hundreds, see BenchmarkContextHook),
// and every CancelEvery steps it aborts the run with ctx's error once
// ctx is cancelled. inner, when non-nil, still runs on every step. A
// nil ctx and nil steps return inner unchanged, preserving the
// zero-overhead path.
func ContextHook(ctx context.Context, steps *atomic.Uint64, inner func(step uint64, now Cycle) error) func(step uint64, now Cycle) error {
	if ctx == nil && steps == nil {
		return inner
	}
	return func(step uint64, now Cycle) error {
		if steps != nil {
			// Publish every step, not every CancelEvery: a job that hangs
			// mid-interval (or before the first boundary) must still report
			// an exact step count to the watchdog, not one up to
			// CancelEvery-1 steps stale.
			steps.Store(step)
		}
		if step%CancelEvery == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: aborted at step %d: %w", step, err)
			}
		}
		if inner != nil {
			return inner(step, now)
		}
		return nil
	}
}

// Drive is RunAll with an observation hook: after every scheduler step it
// invokes hook with the count of steps executed so far and the stepped
// agent's local time. The hook runs between transactions, when no request
// is in flight, so it may mutate or audit global state (fault-injection
// campaigns perturb the protocol and run the invariant checker here). A
// non-nil hook error aborts the run; Drive returns the largest local
// clock observed either way.
//
// Scheduling is an indexed min-heap keyed by (local clock, agent
// index), so each step costs O(log cores) instead of the O(cores)
// linear scan it replaced. The agent-index tie-break makes the
// interleaving identical to the linear scan's, step for step
// (sched_test.go proves it), so serial output is unchanged.
func Drive(agents []Clocked, hook func(step uint64, now Cycle) error) (Cycle, error) {
	var last Cycle
	var steps uint64
	h := makeSched(agents)
	for len(h.agent) > 0 {
		a := h.agent[0]
		a.Step()
		t := a.Now()
		if t > last {
			last = t
		}
		if a.Done() {
			h.pop()
		} else {
			h.reposition(t)
		}
		if hook != nil {
			steps++
			if err := hook(steps, t); err != nil {
				return last, err
			}
		}
	}
	return last, nil
}
