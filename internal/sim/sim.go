// Package sim provides primitive types shared by every component of the
// ZeroDEV chip-multiprocessor simulator: the cycle clock, a deterministic
// pseudo-random number generator used by workload synthesis and replacement
// tie-breaking, and the min-clock core scheduler that interleaves per-core
// execution.
package sim

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Cycle is a point on (or a span of) the global clock, measured in core
// clock cycles of the simulated CMP.
type Cycle uint64

// MaxCycle is a sentinel larger than any reachable simulation time.
const MaxCycle = Cycle(^uint64(0))

// Clocked is any agent that owns a local clock and can perform a unit of
// work when scheduled. The scheduler always runs the agent with the
// smallest Now; this interleaving approximates concurrent execution while
// keeping the simulation fully deterministic.
type Clocked interface {
	// Now reports the agent's local time; after the agent finishes it
	// keeps reporting the final time.
	Now() Cycle
	// Step performs one unit of work (typically: run until the next memory
	// access completes) and advances the local clock. Step must not be
	// called after Now returns MaxCycle.
	Step()
	// Done reports whether the agent has retired its whole stream.
	Done() bool
}

// RunAll interleaves agents by smallest local clock until every agent is
// done. It returns the largest local clock observed, i.e. the parallel
// completion time of the slowest agent.
func RunAll(agents []Clocked) Cycle {
	last, _ := Drive(agents, nil)
	return last
}

// CancelEvery is the cooperative cancellation interval: a simulation
// driven through ContextHook observes context cancellation within this
// many scheduler steps, so even a multi-million-step unit aborts with
// bounded latency while the per-step overhead stays one modulo test.
const CancelEvery = 1024

// ContextHook wraps an optional Drive hook with cooperative
// cancellation and progress accounting: every CancelEvery steps it
// publishes the step count to steps (when non-nil, read by the harness
// watchdog for diagnostics) and aborts the run with ctx's error once
// ctx is cancelled. inner, when non-nil, still runs on every step. A
// nil ctx and nil steps return inner unchanged, preserving the
// zero-overhead path.
func ContextHook(ctx context.Context, steps *atomic.Uint64, inner func(step uint64, now Cycle) error) func(step uint64, now Cycle) error {
	if ctx == nil && steps == nil {
		return inner
	}
	return func(step uint64, now Cycle) error {
		if step%CancelEvery == 0 {
			if steps != nil {
				steps.Store(step)
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("sim: aborted at step %d: %w", step, err)
				}
			}
		}
		if inner != nil {
			return inner(step, now)
		}
		return nil
	}
}

// Drive is RunAll with an observation hook: after every scheduler step it
// invokes hook with the count of steps executed so far and the stepped
// agent's local time. The hook runs between transactions, when no request
// is in flight, so it may mutate or audit global state (fault-injection
// campaigns perturb the protocol and run the invariant checker here). A
// non-nil hook error aborts the run; Drive returns the largest local
// clock observed either way.
func Drive(agents []Clocked, hook func(step uint64, now Cycle) error) (Cycle, error) {
	var last Cycle
	var steps uint64
	for {
		min := MaxCycle
		var pick Clocked
		for _, a := range agents {
			if a.Done() {
				continue
			}
			if t := a.Now(); t < min {
				min = t
				pick = a
			}
		}
		if pick == nil {
			return last, nil
		}
		pick.Step()
		if t := pick.Now(); t > last {
			last = t
		}
		if hook != nil {
			steps++
			if err := hook(steps, pick.Now()); err != nil {
				return last, err
			}
		}
	}
}
