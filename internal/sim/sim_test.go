package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should diverge immediately")
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork(1)
	r2 := NewRNG(7)
	_ = r2.Fork(1)
	f2 := r2.Fork(2)
	same := true
	for i := 0; i < 64; i++ {
		if f1.Uint64() != f2.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forks with different labels should produce different streams")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestZipfProperties(t *testing.T) {
	r := NewRNG(5)
	f := func(n uint16, skew float64) bool {
		nn := int(n%1000) + 1
		s := skew
		if s < 0 {
			s = -s
		}
		for i := 0; i < 20; i++ {
			v := r.Zipf(nn, s)
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Skewed draws concentrate: index 0..9 should receive far more than
	// 10/1000 of the mass at skew 1.
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if r.Zipf(1000, 1) < 10 {
			hits++
		}
	}
	if frac := float64(hits) / draws; frac < 0.15 {
		t.Fatalf("Zipf(1000, 1) top-10 mass = %.3f, want heavy head", frac)
	}
}

type fakeAgent struct {
	now   Cycle
	step  Cycle
	left  int
	trace *[]int
	id    int
}

func (f *fakeAgent) Now() Cycle { return f.now }
func (f *fakeAgent) Done() bool { return f.left == 0 }
func (f *fakeAgent) Step() {
	*f.trace = append(*f.trace, f.id)
	f.now += f.step
	f.left--
}

func TestRunAllInterleavesByClock(t *testing.T) {
	var trace []int
	fast := &fakeAgent{step: 1, left: 4, trace: &trace, id: 0}
	slow := &fakeAgent{step: 10, left: 2, trace: &trace, id: 1}
	last := RunAll([]Clocked{fast, slow})
	// fast runs 4 steps (clock 1..4) before slow's second step at 10.
	want := []int{0, 1, 0, 0, 0, 1}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if last != 20 {
		t.Fatalf("completion = %d, want 20", last)
	}
}
