package socket

import (
	"testing"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/llc"
	"repro/internal/workload"
)

// newBareSystem builds a system without running it, for directory-cache
// unit tests.
func newBareSystem(t *testing.T, backing Backing, dirEntries int) *System {
	t.Helper()
	pre := config.TableI(32)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	p := DefaultParams(2, dirEntries)
	p.Backing = backing
	streams := make([]cpu.Stream, 2*spec.Cores)
	for i := range streams {
		streams[i] = workload.Threads(workload.MustGet("swaptions"), 1, 0, 32, 1)[0]
	}
	sys, err := New(p, spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func sockOwned(s int) coher.SocketEntry {
	return coher.SocketEntry{State: coher.SockOwned, Owner: s}
}

func TestDirCacheMemoryBackupSurvivesEviction(t *testing.T) {
	// 8 entries, 8 ways: a single set. The ninth insert evicts silently;
	// the backup still answers.
	sys := newBareSystem(t, MemoryBackup, 8)
	for i := 0; i < 9; i++ {
		sys.storeSocketEntry(0, coher.Addr(i), sockOwned(i%2))
	}
	for i := 0; i < 9; i++ {
		e, _ := sys.lookupSocketEntry(0, coher.Addr(i))
		if e.State != coher.SockOwned || e.Owner != i%2 {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	if sys.Stats().DirCacheMisses == 0 {
		t.Fatal("expected a directory cache miss after eviction")
	}
}

func TestDirCacheDirEvictBitRoundTrip(t *testing.T) {
	sys := newBareSystem(t, DirEvictBit, 8)
	for i := 0; i < 9; i++ {
		sys.storeSocketEntry(0, coher.Addr(i), sockOwned(i%2))
	}
	// One entry was evicted into its memory block's partition.
	bitSet := 0
	for i := 0; i < 9; i++ {
		if _, ok := sys.mem.DirEvict(coher.Addr(i)); ok {
			bitSet++
		}
	}
	if bitSet != 1 {
		t.Fatalf("DirEvict bits set = %d, want 1", bitSet)
	}
	// Lookups recover every entry, clearing the bit on refill.
	for i := 0; i < 9; i++ {
		e, _ := sys.lookupSocketEntry(0, coher.Addr(i))
		if e.State != coher.SockOwned || e.Owner != i%2 {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	if sys.Stats().DirEvictBitHits == 0 {
		t.Fatal("DirEvict-bit path never taken")
	}
}

func TestDirCacheDeadStoreClears(t *testing.T) {
	for _, backing := range []Backing{MemoryBackup, DirEvictBit} {
		sys := newBareSystem(t, backing, 16)
		sys.storeSocketEntry(0, 5, sockOwned(1))
		sys.storeSocketEntry(0, 5, coher.SocketEntry{})
		if e := sys.peekSocketEntry(5); e.Live() {
			t.Fatalf("backing %d: dead store left %+v", backing, e)
		}
	}
}

func TestDirCacheOwnedEvictionPriority(t *testing.T) {
	// §III-D5: owned entries are preferred eviction victims, keeping the
	// shared (read-critical) ones cached.
	sys := newBareSystem(t, DirEvictBit, 8)
	shared := coher.SocketEntry{State: coher.SockShared}
	shared.Sharers.Add(0)
	shared.Sharers.Add(1)
	for i := 0; i < 7; i++ {
		sys.storeSocketEntry(0, coher.Addr(i), shared)
	}
	sys.storeSocketEntry(0, 7, sockOwned(0)) // the one owned entry
	sys.storeSocketEntry(0, 8, shared)       // forces an eviction
	if _, ok := sys.mem.DirEvict(7); !ok {
		t.Fatal("the owned entry should have been victimized first")
	}
}

func TestNewValidatesGeometry(t *testing.T) {
	pre := config.TableI(32)
	spec := pre.Baseline(1, llc.NonInclusive)
	if _, err := New(DefaultParams(2, 24), spec, nil); err == nil {
		t.Fatal("stream-count mismatch accepted")
	}
	p := DefaultParams(2, 24) // 3 sets: not a power of two
	streams := make([]cpu.Stream, 2*spec.Cores)
	for i := range streams {
		streams[i] = workload.Threads(workload.MustGet("swaptions"), 1, 0, 32, 1)[0]
	}
	if _, err := New(p, spec, streams); err == nil {
		t.Fatal("non-power-of-two directory cache accepted")
	}
}
