package socket

import (
	"encoding/binary"
	"sort"

	"repro/internal/coher"
)

// AppendState appends the multi-socket protocol-visible state to buf
// for cross-mode comparison (the serial-equivalence suite fingerprints
// a run's final state under both schedulers): every socket's engine
// state, the shared home-memory metadata, the socket-level directory
// cache, and — under the MemoryBackup scheme — the authoritative backup
// map in sorted address order, so the encoding is independent of map
// iteration order. Clocks, statistics, and DRAM/NoC timing state are
// excluded, as in core.System.AppendState.
func (sys *System) AppendState(buf []byte) []byte {
	for _, s := range sys.Sockets {
		buf = s.Engine.AppendState(buf)
		buf = append(buf, 0xfd) // socket separator
	}
	buf = sys.mem.AppendState(buf)
	buf = append(buf, 0xfe)
	buf = sys.dirCache.AppendState(buf, appendSocketEntry)
	buf = append(buf, 0xfe)
	addrs := make([]coher.Addr, 0, len(sys.backup))
	for a := range sys.backup {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		e := sys.backup[a]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a))
		buf = appendSocketEntry(buf, &e)
	}
	return buf
}

func appendSocketEntry(buf []byte, e *coher.SocketEntry) []byte {
	buf = append(buf, byte(e.State), byte(e.Owner))
	return binary.LittleEndian.AppendUint64(buf, uint64(e.Sharers))
}
