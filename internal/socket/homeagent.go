package socket

import (
	"fmt"
	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
)

// homeAgent implements core.Home for one socket of the multi-socket
// system: every off-socket flow goes through the home socket of the
// block, its socket-level directory, and home memory.
type homeAgent struct {
	sys    *System
	socket int
}

// socketServeCycles approximates the uncore time a forwarded request
// spends inside the serving socket (directory slice + private hierarchy
// retrieval).
const socketServeCycles = sim.Cycle(20)

func (h *homeAgent) homeOf(addr coher.Addr) int {
	p := h.sys.P
	if p.HomeGroups <= 1 {
		return int(uint64(addr) % uint64(p.Sockets))
	}
	// Hierarchical distribution: interleave homes across groups first,
	// then across the sockets of the selected group.
	per := p.Sockets / p.HomeGroups
	grp := int(uint64(addr) % uint64(p.HomeGroups))
	return grp*per + int(uint64(addr)/uint64(p.HomeGroups)%uint64(per))
}

func (h *homeAgent) inter(a, b int) sim.Cycle {
	if a == b {
		return 0
	}
	p := h.sys.P
	if p.HomeGroups > 1 && p.IntraGroupCycles > 0 {
		per := p.Sockets / p.HomeGroups
		if a/per == b/per {
			return p.IntraGroupCycles
		}
	}
	return p.InterSocketCycles
}

// --- socket-level directory cache with the two backing schemes ---------------

func (sys *System) lookupSocketEntry(t sim.Cycle, addr coher.Addr) (coher.SocketEntry, sim.Cycle) {
	if set, way, ok := sys.dirCache.Lookup(uint64(addr)); ok {
		sys.dirCache.Touch(set, way)
		return *sys.dirCache.Payload(set, way), t + 2
	}
	sys.stats.DirCacheMisses++
	switch sys.P.Backing {
	case MemoryBackup:
		// The home-memory backup region always holds the entry; a miss
		// costs one DRAM read, issued in parallel with the demand path
		// (home memory is looked up anyway on the flows that miss here),
		// so it contributes bank occupancy and traffic but only a small
		// serialization charge.
		e := sys.backup[addr]
		sys.dram.Read(t, uint64(addr), dram.KindData)
		sys.fillDirCache(t, addr, e)
		return e, t + 4
	default: // DirEvictBit
		if e, ok := sys.mem.DirEvict(addr); ok {
			sys.stats.DirEvictBitHits++
			sys.dram.Read(t, uint64(addr), dram.KindData)
			sys.mem.ClearDirEvict(addr)
			sys.fillDirCache(t, addr, e)
			return e, t + 4
		}
		return coher.SocketEntry{}, t + 2
	}
}

func (sys *System) storeSocketEntry(t sim.Cycle, addr coher.Addr, e coher.SocketEntry) {
	if sys.P.Backing == MemoryBackup {
		if sys.backup == nil {
			sys.backup = make(map[coher.Addr]coher.SocketEntry)
		}
		if e.Live() {
			sys.backup[addr] = e
		} else {
			delete(sys.backup, addr)
		}
	}
	set, way, ok := sys.dirCache.Lookup(uint64(addr))
	if !e.Live() {
		if ok {
			sys.dirCache.Invalidate(set, way)
		}
		if sys.P.Backing == DirEvictBit {
			sys.mem.ClearDirEvict(addr)
		}
		return
	}
	if ok {
		*sys.dirCache.Payload(set, way) = e
		sys.dirCache.Touch(set, way)
		return
	}
	sys.fillDirCache(t, addr, e)
}

// fillDirCache inserts an entry, handling the eviction per the backing
// scheme. Owned entries get higher replacement priority (§III-D5) to
// minimize corrupted shared blocks.
func (sys *System) fillDirCache(t sim.Cycle, addr coher.Addr, e coher.SocketEntry) {
	set := sys.dirCache.SetIndex(uint64(addr))
	way, free := sys.dirCache.FreeWay(set)
	if !free {
		w, ok := sys.dirCache.VictimWhere(set, func(_ int, p *coher.SocketEntry) bool {
			return p.State == coher.SockOwned
		})
		if !ok {
			w = sys.dirCache.Victim(set)
		}
		way = w
		victim := *sys.dirCache.Payload(set, way)
		vAddr := coher.Addr(sys.dirCache.AddrOf(set, way))
		if sys.P.Backing == DirEvictBit && victim.Live() {
			// The evicted socket-level entry is housed in the memory
			// block's reserved partition; one DirEvict bit records it.
			sys.mem.SetDirEvict(vAddr, victim)
			sys.dram.Write(t, uint64(vAddr), dram.KindData)
		}
		// MemoryBackup: the backup already holds it; the eviction is
		// silent.
		sys.dirCache.Invalidate(set, way)
	}
	sys.dirCache.Insert(set, way, uint64(addr), e)
}

// --- core.Home implementation ------------------------------------------------

// FetchBlock implements core.Home (Fig. 15).
func (h *homeAgent) FetchBlock(t sim.Cycle, s int, addr coher.Addr, exclusive bool) core.FetchResult {
	sys := h.sys
	sys.stats.SocketMisses++
	home := h.homeOf(addr)
	t1 := t + h.inter(s, home)
	ent, t1 := sys.lookupSocketEntry(t1, addr)
	corrupted := sys.mem.Corrupted(addr)
	holders := ent.Holders()

	// Case: the requesting socket is a holder but had a socket miss —
	// its directory entry must live in the corrupted home block
	// (Fig. 15 step 3: baseline flow with a special corrupted response).
	if corrupted && holders.Contains(s) {
		seg, ok := sys.mem.ReadSegment(addr, s)
		if !ok {
			panic("socket: holder socket missed with no segment in the corrupted block")
		}
		done := sys.dram.Read(t1, uint64(addr), dram.KindDE) + 1 + h.inter(home, s)
		sys.mem.ClearSegment(addr, s)
		return core.FetchResult{Done: done, DE: &seg}
	}

	switch {
	case !ent.Live():
		done := sys.dram.Read(t1, uint64(addr), dram.KindData) + h.inter(home, s)
		sys.storeSocketEntry(t1, addr, coher.SocketEntry{State: coher.SockOwned, Owner: s})
		return core.FetchResult{Done: done}

	case ent.State == coher.SockShared && !corrupted && !exclusive:
		done := sys.dram.Read(t1, uint64(addr), dram.KindData) + h.inter(home, s)
		next := ent
		next.Sharers.Add(s)
		sys.storeSocketEntry(t1, addr, next)
		return core.FetchResult{Done: done, SharedGrant: true}

	case ent.State == coher.SockShared && !corrupted && exclusive:
		done := sys.dram.Read(t1, uint64(addr), dram.KindData) + h.inter(home, s)
		holders.ForEach(func(g int) {
			if g != s {
				h.invalidateSocket(t1, g, addr)
			}
		})
		sys.storeSocketEntry(t1, addr, coher.SocketEntry{State: coher.SockOwned, Owner: s})
		return core.FetchResult{Done: done}

	default:
		// Owned by another socket, or corrupted with the requester not a
		// holder: forward to a sharer or the owner socket F (step 4).
		if holders.Empty() {
			panic("socket: corrupted block with no holder sockets")
		}
		f := holders.First()
		if f == s {
			panic("socket: socket missed a block it owns")
		}
		done := h.forward(t1, s, f, addr, exclusive)
		if exclusive {
			holders.ForEach(func(g int) {
				if g != s && g != f {
					h.invalidateSocket(t1, g, addr)
				}
			})
			sys.storeSocketEntry(t1, addr, coher.SocketEntry{State: coher.SockOwned, Owner: s})
			return core.FetchResult{Done: done, ServedBySocket: true}
		}
		var next coher.SocketEntry
		next.State = coher.SockShared
		next.Sharers = holders
		next.Sharers.Add(s)
		sys.storeSocketEntry(t1, addr, next)
		return core.FetchResult{Done: done, ServedBySocket: true, SharedGrant: true}
	}
}

// forward sends the request to socket f, running the DENF_NACK retry
// when f cannot find the directory entry (Fig. 15 steps 5-11). It
// returns the completion time at the requesting socket.
func (h *homeAgent) forward(t1 sim.Cycle, s, f int, addr coher.Addr, exclusive bool) sim.Cycle {
	sys := h.sys
	sys.stats.SocketForwards++
	home := h.homeOf(addr)
	eng := sys.Sockets[f].Engine
	tf := t1 + h.inter(home, f)
	found, dirty := eng.ServeForwarded(tf, addr, exclusive, nil)
	done := tf + socketServeCycles + h.inter(f, s)
	if !found {
		// DENF_NACK: extract F's entry from the corrupted home block and
		// resend the request with it (steps 8-11).
		sys.stats.DENFNacks++
		if sys.P.Faults != nil && sys.P.Faults.DropDENFNack(f, addr) {
			// The NACK is lost in transit: home times out and retransmits
			// the forward. The model is synchronous, so F's state cannot
			// have changed; it must NACK again, and only the timing moves.
			tf += 2 * sys.P.InterSocketCycles
			if again, _ := eng.ServeForwarded(tf, addr, exclusive, nil); again {
				panic("socket: socket state changed between a dropped NACK and its retransmission")
			}
			sys.stats.DENFNacks++
		}
		seg, ok := sys.mem.ReadSegment(addr, f)
		if !ok {
			var views string
			for i, sk := range sys.Sockets {
				views += fmt.Sprintf(" s%d:any=%v", i, sk.Engine.HasAnyCopy(addr))
			}
			panic(fmt.Sprintf("socket: DENF_NACK for socket %d with no segment: addr=%#x entry=%+v corrupted=%v%s",
				f, uint64(addr), sys.peekSocketEntry(addr), sys.mem.Corrupted(addr), views))
		}
		tn := tf + socketServeCycles + h.inter(f, home)
		tn = sys.dram.Read(tn, uint64(addr), dram.KindDE)
		sys.mem.ClearSegment(addr, f) // consumed; F re-houses the entry
		tr := tn + h.inter(home, f)
		de := seg
		if ok2, d2 := eng.ServeForwarded(tr, addr, exclusive, &de); !ok2 {
			panic("socket: retried forward with directory entry still failed")
		} else {
			dirty = d2
		}
		done = tr + socketServeCycles + h.inter(f, s)
	}
	if dirty && !exclusive {
		// Inter-socket M→S downgrade: the owner socket writes the block
		// back to home memory so future sockets can be served from there.
		sys.dram.Write(t1, uint64(addr), dram.KindData)
		sys.mem.Restore(addr)
	}
	return done
}

// invalidateSocket wipes socket g's copies of addr, reaching through a
// home-memory segment when g's directory entry lives there.
func (h *homeAgent) invalidateSocket(t sim.Cycle, g int, addr coher.Addr) {
	sys := h.sys
	eng := sys.Sockets[g].Engine
	if seg, ok := sys.mem.ReadSegment(addr, g); ok {
		eng.InvalidateSocketCopiesWithDE(t, addr, seg)
		sys.mem.ClearSegment(addr, g)
		return
	}
	eng.InvalidateSocketCopies(t, addr)
}

// WriteBack implements core.Home.
func (h *homeAgent) WriteBack(t sim.Cycle, s int, addr coher.Addr) {
	home := h.homeOf(addr)
	h.sys.dram.Write(t+h.inter(s, home), uint64(addr), dram.KindData)
	h.sys.mem.Restore(addr)
}

// WBDE implements core.Home (Fig. 14).
func (h *homeAgent) WBDE(t sim.Cycle, s int, addr coher.Addr, e coher.Entry) {
	sys := h.sys
	home := h.homeOf(addr)
	t1 := t + h.inter(s, home)
	others := sys.mem.CorruptedSockets(addr)
	others.Remove(s)
	if !others.Empty() {
		// Another socket's entry already lives in the block: read, merge
		// the incoming entry into S's slot, write back.
		sys.stats.CorruptedMerges++
		t1 = sys.dram.Read(t1, uint64(addr), dram.KindDE)
	}
	sys.dram.Write(t1, uint64(addr), dram.KindDE)
	if err := sys.mem.WriteSegment(addr, s, e); err != nil {
		panic("socket: " + err.Error())
	}
}

// GetDE implements core.Home (Fig. 16 steps 3-4).
func (h *homeAgent) GetDE(t sim.Cycle, s int, addr coher.Addr) (coher.Entry, sim.Cycle, bool) {
	sys := h.sys
	e, ok := sys.mem.ReadSegment(addr, s)
	if !ok {
		return coher.Entry{}, t, false
	}
	home := h.homeOf(addr)
	done := sys.dram.Read(t+h.inter(s, home), uint64(addr), dram.KindDE) + 1 + h.inter(home, s)
	return e, done, true
}

// PutDE implements core.Home (Fig. 16 step 6).
func (h *homeAgent) PutDE(t sim.Cycle, s int, addr coher.Addr, e coher.Entry) {
	sys := h.sys
	home := h.homeOf(addr)
	sys.dram.Write(t+h.inter(s, home), uint64(addr), dram.KindDE)
	if e.Live() {
		if err := sys.mem.WriteSegment(addr, s, e); err != nil {
			panic("socket: " + err.Error())
		}
		return
	}
	sys.mem.ClearSegment(addr, s)
}

// SocketEvict implements core.Home: socket s no longer holds addr.
func (h *homeAgent) SocketEvict(t sim.Cycle, s int, addr coher.Addr) bool {
	sys := h.sys
	home := h.homeOf(addr)
	t1 := t + h.inter(s, home)
	ent, t1 := sys.lookupSocketEntry(t1, addr)
	var next coher.SocketEntry
	switch ent.State {
	case coher.SockOwned:
		if ent.Owner != s {
			panic("socket: eviction notice from a non-owner socket")
		}
	case coher.SockShared:
		next = ent
		next.Sharers.Remove(s)
		if next.Sharers.Count() == 1 {
			// Last remaining socket becomes the owner at socket level.
			next = coher.SocketEntry{State: coher.SockOwned, Owner: next.Sharers.First()}
		} else if next.Sharers.Empty() {
			next = coher.SocketEntry{}
		}
	default:
		panic("socket: eviction notice for an untracked block")
	}
	sys.storeSocketEntry(t1, addr, next)
	if !next.Live() && sys.mem.Corrupted(addr) {
		sys.stats.LastCopyRestores++
		return true
	}
	return false
}

// peekSocketEntry reads the socket-level entry without charging timing,
// for metadata decisions and invariant checks.
func (sys *System) peekSocketEntry(addr coher.Addr) coher.SocketEntry {
	if set, way, ok := sys.dirCache.Lookup(uint64(addr)); ok {
		return *sys.dirCache.Payload(set, way)
	}
	if sys.P.Backing == MemoryBackup {
		return sys.backup[addr]
	}
	if e, ok := sys.mem.DirEvict(addr); ok {
		return e
	}
	return coher.SocketEntry{}
}

// AcquireExclusive implements core.Home: invalidate every other
// socket's copies before a core of socket s takes the block to M.
func (h *homeAgent) AcquireExclusive(t sim.Cycle, s int, addr coher.Addr) sim.Cycle {
	sys := h.sys
	home := h.homeOf(addr)
	ent := sys.peekSocketEntry(addr)
	holders := ent.Holders()
	if holders.Count() <= 1 && holders.Contains(s) && ent.State == coher.SockOwned {
		return t // already exclusive
	}
	t1 := t + h.inter(s, home)
	_, t1 = sys.lookupSocketEntry(t1, addr)
	holders.ForEach(func(g int) {
		if g != s {
			h.invalidateSocket(t1, g, addr)
		}
	})
	sys.storeSocketEntry(t1, addr, coher.SocketEntry{State: coher.SockOwned, Owner: s})
	return t1 + h.inter(home, s)
}

// SharedElsewhere implements core.Home.
func (h *homeAgent) SharedElsewhere(s int, addr coher.Addr) bool {
	holders := h.sys.peekSocketEntry(addr).Holders()
	holders.Remove(s)
	return !holders.Empty()
}

// Corrupted implements core.Home.
func (h *homeAgent) Corrupted(addr coher.Addr) bool { return h.sys.mem.Corrupted(addr) }

// Segment implements core.Home.
func (h *homeAgent) Segment(s int, addr coher.Addr) (coher.Entry, bool) {
	return h.sys.mem.ReadSegment(addr, s)
}
