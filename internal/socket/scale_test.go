package socket_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/socket"
	"repro/internal/workload"
)

// runOrg assembles and runs one scale-frontier organization under
// ZeroDEV(NoDir), returning the system for stat assertions. Accesses are
// kept small: these tests check that wide shapes assemble, run, and hold
// their invariants, not performance.
func runOrg(t *testing.T, g config.Org, accesses int) *socket.System {
	t.Helper()
	p := socket.DefaultParams(g.Sockets, 2048)
	p.HomeGroups = g.HomeGroups
	p.IntraGroupCycles = 40
	spec := g.Preset.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	prof := workload.MustGet("canneal")
	streams := workload.Threads(prof, g.Sockets*spec.Cores, accesses, g.Preset.Scale, 7)
	sys, err := socket.New(p, spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return sys
}

func TestScaleFrontier16x64(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke")
	}
	g, err := config.MultiSocket(1024, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.HomeGroups != 4 {
		t.Fatalf("home groups = %d, want 4", g.HomeGroups)
	}
	sys := runOrg(t, g, 400)
	if sys.Mem().SegmentBudget() != 27 {
		t.Fatalf("segment budget = %d, want 27", sys.Mem().SegmentBudget())
	}
	var devs uint64
	for _, s := range sys.Sockets {
		devs += s.Engine.Stats().DEVs
	}
	if devs != 0 {
		t.Fatalf("%d DEVs under ZeroDEV at 16×64", devs)
	}
	t.Logf("16×64: misses=%d forwards=%d nacks=%d coarse=%d metaHW=%d",
		sys.Stats().SocketMisses, sys.Stats().SocketForwards, sys.Stats().DENFNacks,
		sys.Mem().CoarseSegmentWrites(), sys.Mem().MetaHighWater())
}

func TestScaleFrontierWideSockets(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke")
	}
	// 4 × 256-core sockets: per-socket sharer sets cross the two-word
	// inline boundary, and home segments run compressed (budget 123).
	g, err := config.MultiSocket(1024, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys := runOrg(t, g, 400)
	if sys.Mem().SegmentBudget() != 123 {
		t.Fatalf("segment budget = %d, want 123", sys.Mem().SegmentBudget())
	}
	var devs uint64
	for _, s := range sys.Sockets {
		devs += s.Engine.Stats().DEVs
	}
	if devs != 0 {
		t.Fatalf("%d DEVs under ZeroDEV at 4×256", devs)
	}
}

func TestHierarchicalHomeDistribution(t *testing.T) {
	// With groups, consecutive addresses interleave across groups first;
	// the flat layout must be preserved when HomeGroups <= 1. Exercised
	// indirectly: two 8-socket runs, flat vs grouped, must both pass
	// invariants but differ in timing (the grouped one has cheap
	// intra-group hops).
	g, err := config.MultiSocket(256, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.HomeGroups != 2 {
		t.Fatalf("home groups = %d, want 2", g.HomeGroups)
	}
	runOrg(t, g, 300)
	flat := g
	flat.HomeGroups = 1
	runOrg(t, flat, 300)
}

func TestOrgValidation(t *testing.T) {
	// Satellite refusal table: shapes that cannot be represented are
	// rejected with named errors instead of panicking mid-run.
	if _, err := config.MultiSocket(1000, 16, 8); err == nil {
		t.Fatal("1000 cores do not split over 16 sockets")
	}
	if _, err := config.MultiSocket(16384, 64, 8); err == nil {
		t.Fatal("64×256 exceeds the compressed home-segment budget")
	}
}
