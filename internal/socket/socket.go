// Package socket implements the multi-socket system of the paper's
// §III-D: per-socket CMPs (each a core.Engine with its own sparse
// directory, LLC, and mesh) glued by a home-based MESI socket-level
// directory with the Corrupted state, the WB_DE / GET_DE / DENF_NACK
// flows of Figs. 14-16, and the two socket-directory backing schemes of
// §III-D5 (full backup in home memory, or the constant-overhead
// DirEvict-bit scheme).
package socket

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/llc"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Backing selects how socket-level directory entries survive eviction
// from the socket directory cache (§III-D5).
type Backing uint8

const (
	// MemoryBackup keeps a full copy of every socket-level entry in home
	// memory (solution 1: simple, 1.2% DRAM overhead at four sockets).
	MemoryBackup Backing = iota
	// DirEvictBit stores an evicted socket-level entry in the memory
	// block's reserved partition and records it with one DirEvict bit
	// per block (solution 2: 0.2% constant overhead).
	DirEvictBit
)

// Params configure the multi-socket system.
type Params struct {
	Sockets int
	// InterSocketCycles is the one-way inter-socket routing delay
	// (§IV: 20 ns, i.e. 80 cycles at 4 GHz).
	InterSocketCycles sim.Cycle
	// DirCacheEntries sizes the socket-level directory cache; ways fixes
	// its associativity.
	DirCacheEntries, DirCacheWays int
	Backing                       Backing

	// HomeGroups organizes the sockets hierarchically for home-agent
	// distribution (the 8/16-socket scale-frontier organizations): the
	// low address bits select the group, the next bits the socket within
	// it, so consecutive blocks interleave across groups first and board
	// locality is preserved within a group. 0 or 1 keeps the classic flat
	// addr%sockets distribution. Must divide Sockets.
	HomeGroups int
	// IntraGroupCycles, when positive and HomeGroups > 1, is the cheaper
	// one-way delay between sockets of the same group; hops that cross a
	// group boundary still pay InterSocketCycles. 0 charges the flat
	// InterSocketCycles everywhere.
	IntraGroupCycles sim.Cycle

	// WrapHome, when non-nil, decorates the per-socket home agent each
	// engine talks to (fault campaigns interpose WB_DE drop/duplication
	// here). Socket-level state remains authoritative underneath.
	WrapHome func(socket int, h core.Home) core.Home
	// Faults, when non-nil, is consulted at the inter-socket message
	// seams (currently: dropping a DENF_NACK so home must retransmit the
	// forwarded request after a timeout).
	Faults ForwardFaults
}

// ForwardFaults is the socket-layer fault seam, implemented by
// internal/faults.
type ForwardFaults interface {
	// DropDENFNack reports whether the DENF_NACK socket f just sent for
	// addr should be lost in transit, forcing a timeout-and-retransmit.
	DropDENFNack(f int, addr coher.Addr) bool
}

// DefaultParams returns the paper's four-socket evaluation parameters.
func DefaultParams(sockets, dirEntries int) Params {
	return Params{
		Sockets:           sockets,
		InterSocketCycles: 80,
		DirCacheEntries:   dirEntries,
		DirCacheWays:      8,
		Backing:           MemoryBackup,
	}
}

// Socket is one CMP of the system.
type Socket struct {
	Engine *core.Engine
	Cores  []*cpu.Core
}

// Stats aggregates socket-layer activity.
type Stats struct {
	SocketMisses     uint64
	SocketForwards   uint64 // requests forwarded to a sharer/owner socket
	DENFNacks        uint64 // Fig. 15 step 7 retries
	CorruptedMerges  uint64 // WB_DE read-modify-write merges (Fig. 14)
	DirCacheMisses   uint64
	DirEvictBitHits  uint64
	LastCopyRestores uint64
}

// System is a runnable multi-socket machine.
type System struct {
	P       Params
	Sockets []*Socket

	mem      *mem.Memory
	dram     *dram.DRAM
	dirCache *cache.Array[coher.SocketEntry]
	// backup is the authoritative full-map socket-directory backup used
	// by the MemoryBackup scheme (the reserved home-memory region of
	// §III-D5, solution 1).
	backup map[coher.Addr]coher.SocketEntry
	stats  Stats
}

// New assembles the system: spec describes one socket (its Dir
// constructor is invoked per socket); streams supplies the reference
// stream for every core, socket-major.
func New(p Params, spec core.SystemSpec, streams []cpu.Stream) (*System, error) {
	if len(streams) != p.Sockets*spec.Cores {
		return nil, fmt.Errorf("socket: need %d streams, got %d", p.Sockets*spec.Cores, len(streams))
	}
	sets := p.DirCacheEntries / p.DirCacheWays
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("socket: directory cache sets %d not a power of two", sets)
	}
	if p.HomeGroups > 1 && p.Sockets%p.HomeGroups != 0 {
		return nil, fmt.Errorf("socket: %d home groups do not divide %d sockets", p.HomeGroups, p.Sockets)
	}
	sys := &System{
		P:        p,
		mem:      mem.MustNew(p.Sockets, spec.Cores),
		dram:     dram.MustNew(spec.DRAM),
		dirCache: cache.New[coher.SocketEntry](cache.Geometry{Sets: sets, Ways: p.DirCacheWays}, cache.NRU),
	}
	for s := 0; s < p.Sockets; s++ {
		l, err := buildLLC(spec)
		if err != nil {
			return nil, err
		}
		mesh := noc.MustNew(spec.NoC, spec.Cores, spec.LLCBanks)
		up := spec.Uncore
		up.Cores = spec.Cores
		up.Backend = spec.Backend
		up.ZeroDEV = spec.ZeroDEV
		up.Policy = spec.Policy
		up.Socket = s
		var h core.Home = &homeAgent{sys: sys, socket: s}
		if p.WrapHome != nil {
			h = p.WrapHome(s, h)
		}
		eng := core.New(up, spec.Dir(), l, mesh, h)
		sock := &Socket{Engine: eng}
		ports := make([]core.CorePort, spec.Cores)
		for i := 0; i < spec.Cores; i++ {
			c := cpu.New(coher.CoreID(i), spec.CPU, streams[s*spec.Cores+i], eng)
			sock.Cores = append(sock.Cores, c)
			ports[i] = c
		}
		eng.AttachCores(ports)
		sys.Sockets = append(sys.Sockets, sock)
	}
	return sys, nil
}

// Run drives every core of every socket to completion.
func (sys *System) Run() sim.Cycle {
	c, _ := sys.RunCtx(nil, nil)
	return c
}

// RunCtx is Run with cooperative cancellation (see core.System.RunCtx):
// the run aborts with ctx's error within sim.CancelEvery steps of
// cancellation, and steps (when non-nil) tracks progress for hang
// diagnostics.
func (sys *System) RunCtx(ctx context.Context, steps *atomic.Uint64) (sim.Cycle, error) {
	var agents []sim.Clocked
	for _, s := range sys.Sockets {
		for _, c := range s.Cores {
			agents = append(agents, c)
		}
	}
	return sim.Drive(agents, sim.ContextHook(ctx, steps, nil))
}

// RunCtxDomains is RunCtx under the epoch-barrier domain scheduler
// (sim.DriveDomains): each socket's cores form one domain, stepped in
// parallel below the private-step horizon; every uncore-reaching step
// (which may touch the shared socket directory, home memory, or a
// remote socket's engine) executes serially in exact global (clock,
// core index) order, so output is byte-identical to RunCtx. The
// socket-major agent flattening of RunCtx is exactly the domain-major
// order here, preserving the tie-break. workers <= 1 delegates to
// RunCtx.
func (sys *System) RunCtxDomains(ctx context.Context, steps *atomic.Uint64, workers int) (sim.Cycle, error) {
	if workers <= 1 {
		return sys.RunCtx(ctx, steps)
	}
	domains := make([][]sim.LocalAgent, len(sys.Sockets))
	for s, sock := range sys.Sockets {
		domains[s] = make([]sim.LocalAgent, 0, len(sock.Cores))
		for _, c := range sock.Cores {
			domains[s] = append(domains[s], c)
		}
	}
	return sim.DriveDomains(ctx, domains, workers, steps, noc.NewCrossQueue(len(domains)))
}

// Stats returns the socket-layer counters.
func (sys *System) Stats() Stats { return sys.stats }

// DRAM exposes the shared memory model.
func (sys *System) DRAM() *dram.DRAM { return sys.dram }

// Mem exposes home-memory metadata for tests.
func (sys *System) Mem() *mem.Memory { return sys.mem }

// CheckInvariants validates every socket plus the socket-level
// directory: every holder the socket directory records must actually
// hold the block (in cores, LLC, or a home-memory segment), and every
// socket holding a block must be recorded.
func (sys *System) CheckInvariants() error {
	for i, s := range sys.Sockets {
		if err := s.Engine.CheckInvariants(); err != nil {
			return fmt.Errorf("socket %d: %w", i, err)
		}
	}
	return sys.CheckSocketDirectory()
}

// CheckSocketDirectory cross-validates the socket-level directory
// against per-socket ground truth. It requires the MemoryBackup scheme
// (whose backup map enumerates all live entries); under DirEvictBit it
// checks only the cached entries.
func (sys *System) CheckSocketDirectory() error {
	check := func(addr coher.Addr, e coher.SocketEntry) error {
		var err error
		e.Holders().ForEach(func(g int) {
			if err != nil {
				return
			}
			if sys.Sockets[g].Engine.HasAnyCopy(addr) {
				return
			}
			if _, live := sys.mem.ReadSegment(addr, g); live {
				return
			}
			err = fmt.Errorf("socket dir records socket %d holding %#x (%+v) but it holds nothing",
				g, uint64(addr), e)
		})
		return err
	}
	if sys.P.Backing == MemoryBackup {
		for addr, e := range sys.backup {
			if err := check(addr, e); err != nil {
				return err
			}
		}
		return nil
	}
	var err error
	sys.dirCache.ForEachValid(func(_, _ int, a uint64, e *coher.SocketEntry) {
		if err == nil {
			err = check(coher.Addr(a), *e)
		}
	})
	return err
}

func buildLLC(spec core.SystemSpec) (*llc.LLC, error) {
	if spec.LLCSets > 0 {
		return llc.NewGeometry(spec.LLCSets, spec.LLCWays, spec.LLCBanks, spec.Mode, spec.Repl)
	}
	return llc.New(spec.LLCBytes, spec.LLCWays, spec.LLCBanks, spec.Mode, spec.Repl)
}
