package socket_test

import (
	"testing"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/mem"
	"repro/internal/socket"
	"repro/internal/workload"
)

func run4Socket(t *testing.T, spec core.SystemSpec, backing socket.Backing, prof workload.Profile) *socket.System {
	t.Helper()
	const sockets = 4
	p := socket.DefaultParams(sockets, 512)
	p.Backing = backing
	streams := workload.Threads(prof, sockets*spec.Cores, 8000, 16, 7)
	sys, err := socket.New(p, spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return sys
}

func TestFourSocketBaseline(t *testing.T) {
	pre := config.TableI(16)
	spec := pre.Baseline(1, llc.NonInclusive)
	sys := run4Socket(t, spec, socket.MemoryBackup, workload.MustGet("ocean_cp"))
	if sys.Stats().SocketMisses == 0 {
		t.Fatal("no socket misses recorded")
	}
	if sys.Stats().SocketForwards == 0 {
		t.Fatal("no inter-socket forwards; cross-socket sharing should occur")
	}
}

func TestFourSocketZeroDEV(t *testing.T) {
	pre := config.TableI(16)
	for _, backing := range []socket.Backing{socket.MemoryBackup, socket.DirEvictBit} {
		spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
		sys := run4Socket(t, spec, backing, workload.MustGet("freqmine"))
		for i, s := range sys.Sockets {
			if devs := s.Engine.Stats().DEVs; devs != 0 {
				t.Errorf("backing=%d socket %d: %d DEVs under ZeroDEV", backing, i, devs)
			}
		}
	}
}

func TestFourSocketCorruptedFlows(t *testing.T) {
	// Small LLC + no directory: DE evictions to memory and cross-socket
	// corrupted-block traffic must occur and resolve correctly.
	pre := config.TableI(64)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	sys := run4Socket(t, spec, socket.MemoryBackup, workload.MustGet("canneal"))
	var wbde uint64
	for _, s := range sys.Sockets {
		wbde += s.Engine.Stats().DEEvictionsToMemory
	}
	if wbde == 0 {
		t.Skip("no DE evictions; workload pressure too low at this scale")
	}
	if sys.DRAM().Stats().DEWrites == 0 {
		t.Fatal("WB_DE flows did not reach DRAM")
	}
	// Every corrupted block with a live segment must still have private
	// holders in that segment's socket (checked per-socket by
	// CheckInvariants); here we just confirm the metadata is reachable.
	count := 0
	sys.Mem().ForEachCorrupted(func(addr coher.Addr, b *mem.BlockMeta) { count++ })
	t.Logf("corrupted blocks at end of run: %d, WB_DE=%d", count, wbde)
}
