package socket_test

import (
	"fmt"

	"testing"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/workload"
)

func checkCrossSocketExclusivity(sys *socket.System) error {
	type info struct {
		socket int
		owned  bool
	}
	seen := map[coher.Addr][]info{}
	for si, sk := range sys.Sockets {
		for _, c := range sk.Cores {
			c.ForEachBlock(func(addr coher.Addr, st coher.PrivState) {
				seen[addr] = append(seen[addr], info{si, st == coher.PrivModified || st == coher.PrivExclusive})
			})
		}
	}
	for addr, infos := range seen {
		sockets := map[int]bool{}
		owned := false
		for _, in := range infos {
			sockets[in.socket] = true
			owned = owned || in.owned
		}
		if owned && (len(infos) > 1 || len(sockets) > 1) {
			return fmt.Errorf("block %#x owned M/E while %d copies exist across %d sockets",
				uint64(addr), len(infos), len(sockets))
		}
	}
	return nil
}

func TestStepwiseSocketDir(t *testing.T) {
	pre := config.TableI(32)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	spec.LLCBytes = 128 << 10
	spec.CPU.L2Bytes = 64 << 10
	p := socket.DefaultParams(4, 1024)
	streams := workload.Threads(workload.MustGet("ocean_cp"), 32, 12000, 32, 11)
	sys, err := socket.New(p, spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	var agents []sim.Clocked
	for _, s := range sys.Sockets {
		for _, c := range s.Cores {
			agents = append(agents, c)
		}
	}
	steps := 0
	for {
		min := sim.MaxCycle
		var pick sim.Clocked
		for _, a := range agents {
			if !a.Done() && a.Now() < min {
				min, pick = a.Now(), a
			}
		}
		if pick == nil {
			break
		}
		var pickIdx int
		for i, a := range agents {
			if a == pick {
				pickIdx = i
			}
		}
		pick.Step()
		steps++
		if steps%5000 == 0 {
			if err := sys.CheckSocketDirectory(); err != nil {
				t.Fatalf("after %d steps (agent %d = socket %d core %d): %v",
					steps, pickIdx, pickIdx/8, pickIdx%8, err)
			}
			if err := checkCrossSocketExclusivity(sys); err != nil {
				t.Fatalf("after %d steps (agent %d = socket %d core %d): %v",
					steps, pickIdx, pickIdx/8, pickIdx%8, err)
			}
		}
	}
}
