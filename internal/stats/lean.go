package stats

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/stream"
)

// LeanRun is the memory-lean counterpart of Run for the scale frontier:
// per-core measurements are folded into O(1) streaming aggregates at
// collection time instead of retaining a []cpu.Stats, so a 1024-core
// cell costs the same resident bytes as an 8-core one. Streams merge
// exactly, so lean cells shard and recombine without drift.
type LeanRun struct {
	Label  string
	Cycles sim.Cycle
	Cores  int

	Retired         uint64
	CoreCacheMisses uint64 // summed L2 misses, the paper's metric
	Invalidations   uint64 // external invalidations received by cores

	// CoreIPC is the distribution of whole-run per-core IPC; IntervalIPC
	// folds every core's per-interval IPC samples (empty unless
	// cpu.Params.StatInterval was set).
	CoreIPC     stream.Stream
	IntervalIPC stream.Stream

	Engine  core.Stats
	Traffic noc.Traffic
	DRAM    dram.Stats
	Socket  socket.Stats

	// LLC line population summed across sockets at end of run.
	LLCData, LLCSpilled, LLCFused int
	// DirLive and DirPeak sum directory occupancy and its high-water mark
	// across sockets.
	DirLive, DirPeak int

	// Home-memory pressure: peak live per-block metadata entries and the
	// number of segment writebacks that had to coarsen to a superset
	// encoding (compressed organizations only).
	MetaHighWater int
	CoarseWrites  uint64
}

// AddCore folds one finished core into the aggregates.
func (l *LeanRun) AddCore(c *cpu.Core) {
	s := c.Stats()
	l.Cores++
	l.Retired += s.Retired
	l.CoreCacheMisses += s.L2Misses
	l.Invalidations += s.InvalidationsReceived
	if s.Cycles > 0 {
		l.CoreIPC.Observe(float64(s.Retired) / float64(s.Cycles))
	}
	l.IntervalIPC.Merge(c.IntervalIPC().Flatten())
}

// CollectLean folds a finished multi-socket system into a LeanRun
// without materializing per-core slices.
func CollectLean(label string, sys *socket.System, cycles sim.Cycle) LeanRun {
	l := LeanRun{Label: label, Cycles: cycles}
	for _, sock := range sys.Sockets {
		l.Engine.Add(sock.Engine.Stats())
		l.Traffic.Add(sock.Engine.Mesh().Traffic())
		d, sp, fu := sock.Engine.LLC().CountKinds()
		l.LLCData += d
		l.LLCSpilled += sp
		l.LLCFused += fu
		live, _ := sock.Engine.Directory().Occupancy()
		l.DirLive += live
		if pk, ok := sock.Engine.Directory().(interface{ Peak() int }); ok {
			l.DirPeak += pk.Peak()
		}
		for _, c := range sock.Cores {
			l.AddCore(c)
		}
	}
	l.DRAM = sys.DRAM().Stats()
	l.Socket = sys.Stats()
	l.MetaHighWater = sys.Mem().MetaHighWater()
	l.CoarseWrites = sys.Mem().CoarseSegmentWrites()
	return l
}

// MPKI is core cache misses per kilo-instruction.
func (l LeanRun) MPKI() float64 {
	if l.Retired == 0 {
		return 0
	}
	return 1000 * float64(l.CoreCacheMisses) / float64(l.Retired)
}

// TrafficPerMiss is interconnect bytes per core-cache miss, the lean
// stand-in for normalized traffic when no baseline run is retained.
func (l LeanRun) TrafficPerMiss() float64 {
	if l.CoreCacheMisses == 0 {
		return 0
	}
	return float64(l.Traffic.TotalBytes()) / float64(l.CoreCacheMisses)
}

// RecoveryEvents sums the ZeroDEV recovery-path activations: corrupted
// home fetches, GET_DE flows, last-sharer retrievals at the LLC, home
// last-copy restores, and imprecise-segment reconciliations.
func (l LeanRun) RecoveryEvents() uint64 {
	return l.Engine.CorruptedFetches + l.Engine.GetDEFlows +
		l.Engine.LastSharerRetrievals + l.Socket.LastCopyRestores +
		l.Engine.ImpreciseReconciles
}
