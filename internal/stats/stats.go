// Package stats collects per-run metrics and provides the derived
// quantities the paper reports: weighted speedup for multiprogrammed
// workloads, parallel speedup for multithreaded ones, normalized
// interconnect traffic, normalized core-cache misses, and geometric
// means.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Run is the complete measurement of one simulation.
type Run struct {
	Label   string
	Cycles  sim.Cycle // parallel completion time
	Core    []cpu.Stats
	Engine  core.Stats
	Traffic noc.Traffic
	DRAM    dram.Stats

	// LLC line population at end of run, for occupancy reporting.
	LLCData, LLCSpilled, LLCFused int
	// DirLive/DirCap snapshot directory occupancy; DirCap < 0 means
	// unbounded, DirPeak is its high-water mark, and DirPeakOverflow is
	// the peak entry population that would not fit the 1x organization
	// (the Fig. 5 projection).
	DirLive, DirCap, DirPeak, DirPeakOverflow int
}

// Collect snapshots a finished system.
func Collect(label string, sys *core.System, cycles sim.Cycle) Run {
	r := Run{
		Label:   label,
		Cycles:  cycles,
		Core:    sys.CoreStats(),
		Engine:  *sys.Engine.Stats(),
		Traffic: *sys.Engine.Mesh().Traffic(),
		DRAM:    sys.Home.DRAM().Stats(),
	}
	r.LLCData, r.LLCSpilled, r.LLCFused = sys.Engine.LLC().CountKinds()
	r.DirLive, r.DirCap = sys.Engine.Directory().Occupancy()
	if pk, ok := sys.Engine.Directory().(interface{ Peak() int }); ok {
		r.DirPeak = pk.Peak()
	}
	if po, ok := sys.Engine.Directory().(interface{ PeakOverflow() int }); ok {
		r.DirPeakOverflow = po.PeakOverflow()
	}
	return r
}

// CoreCacheMisses sums L2 misses — the paper's "core cache misses".
func (r Run) CoreCacheMisses() uint64 {
	var n uint64
	for _, c := range r.Core {
		n += c.L2Misses
	}
	return n
}

// Retired sums retired instructions across cores.
func (r Run) Retired() uint64 {
	var n uint64
	for _, c := range r.Core {
		n += c.Retired
	}
	return n
}

// MPKI is core cache misses per kilo-instruction.
func (r Run) MPKI() float64 {
	ret := r.Retired()
	if ret == 0 {
		return 0
	}
	return 1000 * float64(r.CoreCacheMisses()) / float64(ret)
}

// Speedup is the parallel-completion-time speedup of x over base,
// used for multithreaded workloads.
func Speedup(base, x Run) float64 {
	if x.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(x.Cycles)
}

// WeightedSpeedup is the multiprogrammed metric: the mean over cores of
// per-core cycle ratios (each program retires a fixed instruction
// count, so cycle ratio equals IPC ratio).
func WeightedSpeedup(base, x Run) float64 {
	if len(base.Core) != len(x.Core) || len(x.Core) == 0 {
		return 0
	}
	var s float64
	for i := range x.Core {
		if x.Core[i].Cycles == 0 {
			return 0
		}
		s += float64(base.Core[i].Cycles) / float64(x.Core[i].Cycles)
	}
	return s / float64(len(x.Core))
}

// NormTraffic is x's interconnect bytes relative to base.
func NormTraffic(base, x Run) float64 {
	b := base.Traffic.TotalBytes()
	if b == 0 {
		return 0
	}
	return float64(x.Traffic.TotalBytes()) / float64(b)
}

// NormMisses is x's core-cache misses relative to base.
func NormMisses(base, x Run) float64 {
	b := base.CoreCacheMisses()
	if b == 0 {
		return 0
	}
	return float64(x.CoreCacheMisses()) / float64(b)
}

// GeoMean returns the geometric mean of vals (0 for empty input;
// non-positive values are skipped).
func GeoMean(vals []float64) float64 {
	var s float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Min returns the minimum (0 for empty input).
func Min(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Table renders experiment output as an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddF appends a row with a label and formatted float cells.
func (t *Table) AddF(label string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.3f", v))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Headers) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	}
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}
