package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/noc"
)

func TestSpeedupAndWeightedSpeedup(t *testing.T) {
	base := Run{Cycles: 2000, Core: []cpu.Stats{{Cycles: 2000}, {Cycles: 1000}}}
	x := Run{Cycles: 1000, Core: []cpu.Stats{{Cycles: 1000}, {Cycles: 1000}}}
	if got := Speedup(base, x); got != 2 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := WeightedSpeedup(base, x); got != 1.5 {
		t.Fatalf("WeightedSpeedup = %v", got)
	}
	if Speedup(base, Run{}) != 0 || WeightedSpeedup(base, Run{}) != 0 {
		t.Fatal("degenerate runs must yield 0")
	}
}

func TestNormalizations(t *testing.T) {
	var bt, xt noc.Traffic
	bt.Bytes[0] = 100
	xt.Bytes[0] = 80
	base := Run{Traffic: bt, Core: []cpu.Stats{{L2Misses: 50, Retired: 10000}}}
	x := Run{Traffic: xt, Core: []cpu.Stats{{L2Misses: 40, Retired: 10000}}}
	if got := NormTraffic(base, x); got != 0.8 {
		t.Fatalf("NormTraffic = %v", got)
	}
	if got := NormMisses(base, x); got != 0.8 {
		t.Fatalf("NormMisses = %v", got)
	}
	if got := base.MPKI(); got != 5 {
		t.Fatalf("MPKI = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if Min([]float64{3, 1, 2}) != 1 || Max([]float64{3, 1, 2}) != 3 {
		t.Fatal("Min/Max wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "b"}}
	tb.AddRow("x", "1")
	tb.AddF("y", 0.5)
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== T ==", "a", "x", "0.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
