package stats

import (
	"fmt"
	"io"
	"time"
)

// RunTiming summarizes the wall-clock cost of one experiment run under
// the parallel engine: how many simulation jobs ran, on how many
// workers, the elapsed wall time, and the summed per-job simulation
// time. Sim/Wall is the realized parallelism.
type RunTiming struct {
	Experiment string
	Workers    int
	Jobs       int
	Failed     int
	Wall       time.Duration
	Sim        time.Duration
}

// Parallelism is the realized speedup over the jobs' summed simulation
// time (1.0 on the serial path, approaching Workers under full load).
// Quick-scale runs on fast machines can finish below the clock's
// resolution, leaving Wall (or both durations) zero; rather than report
// a bogus 0.0x, such runs claim full utilization of their workers — the
// only thing a sub-resolution wall can support.
func (t RunTiming) Parallelism() float64 {
	if t.Wall <= 0 {
		if t.Sim <= 0 {
			return 1
		}
		return float64(max(1, t.Workers))
	}
	return float64(t.Sim) / float64(t.Wall)
}

// Fprint writes a one-line summary.
func (t RunTiming) Fprint(w io.Writer) {
	failed := ""
	if t.Failed > 0 {
		failed = fmt.Sprintf(" (%d FAILED)", t.Failed)
	}
	fmt.Fprintf(w, "[%s: %d jobs%s on %d workers, wall %v, sim %v, %.1fx]\n",
		t.Experiment, t.Jobs, failed, t.Workers,
		t.Wall.Round(time.Millisecond), t.Sim.Round(time.Millisecond),
		t.Parallelism())
}
