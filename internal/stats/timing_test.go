package stats

import (
	"strings"
	"testing"
	"time"
)

func TestParallelismBoundaries(t *testing.T) {
	cases := []struct {
		name string
		t    RunTiming
		want float64
	}{
		{"serial", RunTiming{Workers: 1, Wall: 2 * time.Second, Sim: 2 * time.Second}, 1},
		{"parallel", RunTiming{Workers: 8, Wall: time.Second, Sim: 6 * time.Second}, 6},
		// Sub-resolution walls: a Quick run can finish before the clock
		// ticks. 0.0x would be a lie; claim full worker utilization.
		{"zero wall with sim time", RunTiming{Workers: 4, Wall: 0, Sim: time.Millisecond}, 4},
		{"zero wall zero workers", RunTiming{Workers: 0, Wall: 0, Sim: time.Millisecond}, 1},
		{"negative wall", RunTiming{Workers: 2, Wall: -time.Nanosecond, Sim: time.Millisecond}, 2},
		{"all zero", RunTiming{Workers: 8, Wall: 0, Sim: 0}, 1},
	}
	for _, c := range cases {
		if got := c.t.Parallelism(); got != c.want {
			t.Errorf("%s: Parallelism() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFprintNeverPrintsZeroX(t *testing.T) {
	var b strings.Builder
	RunTiming{Experiment: "fig2", Workers: 4, Jobs: 3, Sim: time.Microsecond}.Fprint(&b)
	if strings.Contains(b.String(), " 0.0x") {
		t.Fatalf("sub-resolution wall printed 0.0x: %q", b.String())
	}
	if !strings.Contains(b.String(), "fig2") {
		t.Fatalf("summary line malformed: %q", b.String())
	}
}
