// Package stream provides bounded-memory streaming aggregation for the
// scale frontier: wide systems (1024 cores, 16 sockets) produce per-core
// and per-interval measurements that must be folded as they appear
// rather than accumulated, so a Quick run's resident set stays
// proportional to the summary, not to cores × intervals. All state is
// exported with JSON tags so aggregates round-trip through the harness
// checkpoint cells.
package stream

import "math"

// Stream folds an unbounded sequence of observations into O(1) summary
// state: count, sum, extrema, and Welford mean/variance. The zero value
// is an empty aggregate ready for use. Streams merge exactly (Chan et
// al. parallel variance), so sharded collection reduces to the same
// result as a single pass in any grouping.
type Stream struct {
	N    uint64  `json:"n"`
	Sum  float64 `json:"sum"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// Observe folds one value.
func (s *Stream) Observe(v float64) {
	if s.N == 0 {
		s.Lo, s.Hi = v, v
	} else {
		if v < s.Lo {
			s.Lo = v
		}
		if v > s.Hi {
			s.Hi = v
		}
	}
	s.N++
	s.Sum += v
	d := v - s.Mean
	s.Mean += d / float64(s.N)
	s.M2 += d * (v - s.Mean)
}

// Merge folds another aggregate into s, as if every observation behind o
// had been Observed here.
func (s *Stream) Merge(o Stream) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n := float64(s.N) + float64(o.N)
	d := o.Mean - s.Mean
	s.M2 += o.M2 + d*d*float64(s.N)*float64(o.N)/n
	s.Mean = (s.Mean*float64(s.N) + o.Mean*float64(o.N)) / n
	s.N += o.N
	s.Sum += o.Sum
	if o.Lo < s.Lo {
		s.Lo = o.Lo
	}
	if o.Hi > s.Hi {
		s.Hi = o.Hi
	}
}

// Std is the sample standard deviation (0 with fewer than two
// observations).
func (s Stream) Std() float64 {
	if s.N < 2 {
		return 0
	}
	return math.Sqrt(s.M2 / float64(s.N-1))
}

// DefaultSeriesCap is the point budget a zero-valued Series adopts on
// first use.
const DefaultSeriesCap = 64

// Series records a time series in bounded memory: at most Cap points,
// each a Stream folding Stride consecutive observations. When the
// series fills, adjacent points merge pairwise and the stride doubles,
// so arbitrarily long runs keep O(Cap) state while the curve's shape
// survives at progressively coarser resolution. The zero value is ready
// to use with DefaultSeriesCap points; Cap must be even.
type Series struct {
	Cap    int      `json:"cap"`
	Stride uint64   `json:"stride"`
	Fill   uint64   `json:"fill"` // observations folded into the last point
	Points []Stream `json:"points"`
}

// NewSeries returns a Series bounded at capPoints (rounded up to even).
func NewSeries(capPoints int) Series {
	if capPoints < 2 {
		capPoints = 2
	}
	if capPoints%2 != 0 {
		capPoints++
	}
	return Series{Cap: capPoints}
}

// Observe appends one observation to the series.
func (s *Series) Observe(v float64) {
	if s.Cap == 0 {
		s.Cap = DefaultSeriesCap
	}
	if s.Stride == 0 {
		s.Stride = 1
	}
	if len(s.Points) == 0 || s.Fill == s.Stride {
		if len(s.Points) == s.Cap {
			// Compact: merge adjacent pairs, double the stride.
			for i := 0; i < s.Cap/2; i++ {
				p := s.Points[2*i]
				p.Merge(s.Points[2*i+1])
				s.Points[i] = p
			}
			s.Points = s.Points[:s.Cap/2]
			s.Stride *= 2
		}
		s.Points = append(s.Points, Stream{})
		s.Fill = 0
	}
	s.Points[len(s.Points)-1].Observe(v)
	s.Fill++
}

// Count is the total number of observations folded into the series.
func (s Series) Count() uint64 {
	if len(s.Points) == 0 {
		return 0
	}
	return uint64(len(s.Points)-1)*s.Stride + s.Fill
}

// Flatten folds every point into one Stream, the whole-series summary.
func (s Series) Flatten() Stream {
	var all Stream
	for _, p := range s.Points {
		all.Merge(p)
	}
	return all
}
