package stream

import (
	"encoding/json"
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestStreamMoments(t *testing.T) {
	var s Stream
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		s.Observe(v)
	}
	if s.N != 8 || s.Sum != 40 || s.Lo != 2 || s.Hi != 9 {
		t.Fatalf("stream = %+v", s)
	}
	if !almost(s.Mean, 5) {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	// Sample variance of the set is 32/7.
	if !almost(s.Std(), math.Sqrt(32.0/7)) {
		t.Fatalf("std = %v", s.Std())
	}
}

func TestStreamMergeMatchesSinglePass(t *testing.T) {
	// Any sharding of the observation sequence must merge to the same
	// aggregate as one pass (the property the lean collectors rely on).
	vals := make([]float64, 257)
	for i := range vals {
		vals[i] = float64((i*i)%97) / 7.0
	}
	var whole Stream
	for _, v := range vals {
		whole.Observe(v)
	}
	for _, cut := range []int{0, 1, 64, 128, 256, 257} {
		var a, b Stream
		for _, v := range vals[:cut] {
			a.Observe(v)
		}
		for _, v := range vals[cut:] {
			b.Observe(v)
		}
		a.Merge(b)
		if a.N != whole.N || !almost(a.Mean, whole.Mean) || !almost(a.M2, whole.M2) ||
			a.Lo != whole.Lo || a.Hi != whole.Hi {
			t.Fatalf("cut %d: merged %+v != whole %+v", cut, a, whole)
		}
	}
}

func TestSeriesBoundedDecimation(t *testing.T) {
	s := NewSeries(8)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Observe(float64(i))
	}
	if len(s.Points) > 8 {
		t.Fatalf("series grew to %d points, cap 8", len(s.Points))
	}
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	flat := s.Flatten()
	if flat.N != n || !almost(flat.Mean, float64(n-1)/2) || flat.Lo != 0 || flat.Hi != n-1 {
		t.Fatalf("flatten = %+v", flat)
	}
	// Points remain in time order: per-point means must be increasing for
	// a monotone input.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Mean <= s.Points[i-1].Mean {
			t.Fatalf("point %d mean %v not after %v", i, s.Points[i].Mean, s.Points[i-1].Mean)
		}
	}
}

func TestSeriesZeroValueAndRoundTrip(t *testing.T) {
	var s Series
	for i := 0; i < 500; i++ {
		s.Observe(1.0)
	}
	if s.Cap != DefaultSeriesCap || len(s.Points) > DefaultSeriesCap {
		t.Fatalf("zero-value series = cap %d, %d points", s.Cap, len(s.Points))
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	back.Observe(1.0)
	s.Observe(1.0)
	if back.Count() != s.Count() || len(back.Points) != len(s.Points) {
		t.Fatalf("round-trip diverged: %d/%d vs %d/%d",
			back.Count(), len(back.Points), s.Count(), len(s.Points))
	}
}
