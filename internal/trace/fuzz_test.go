package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/coher"
	"repro/internal/cpu"
)

// decodeAccesses interprets fuzz bytes as a reference stream: 13-byte
// records of gap (4), kind (1), and address (8). The tail is dropped.
func decodeAccesses(data []byte) []cpu.Access {
	var accs []cpu.Access
	for i := 0; i+13 <= len(data); i += 13 {
		accs = append(accs, cpu.Access{
			Gap:  binary.LittleEndian.Uint32(data[i:]),
			Kind: cpu.OpKind(data[i+4] % 3),
			Addr: coher.Addr(binary.LittleEndian.Uint64(data[i+5:])),
		})
	}
	return accs
}

// sliceStream replays a fixed access slice as a cpu.Stream.
type sliceStream struct {
	accs []cpu.Access
	i    int
}

func (s *sliceStream) Next() (cpu.Access, bool) {
	if s.i >= len(s.accs) {
		return cpu.Access{}, false
	}
	a := s.accs[s.i]
	s.i++
	return a, true
}

// FuzzTraceRoundTrip checks that any access sequence — including
// address deltas that wrap the int64 zig-zag encoding — replays from its
// recorded trace exactly.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 13))
	f.Add([]byte("\x01\x00\x00\x00\x02\x40\x00\x00\x00\x00\x00\x00\x00" +
		"\x00\x00\x00\x00\x00\x80\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := Record(w, &sliceStream{accs: accs}, -1); err != nil || n != uint64(len(accs)) {
			t.Fatalf("record: n=%d err=%v, want %d accesses", n, err, len(accs))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range accs {
			got, ok := r.Next()
			if !ok {
				t.Fatalf("stream ended at access %d of %d: %v", i, len(accs), r.Err())
			}
			if got != want {
				t.Fatalf("access %d: replayed %+v, recorded %+v", i, got, want)
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatal("replay produced extra accesses")
		}
		if err := r.Err(); err != nil {
			t.Fatalf("clean trace left error %v", err)
		}
	})
}

// FuzzReaderArbitrary feeds arbitrary bytes to the varint record decoder:
// it must never panic, must terminate, and must flag truncated or corrupt
// input through Err rather than fabricating an unbounded stream.
func FuzzReaderArbitrary(f *testing.F) {
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + "\x00\x00"))
	f.Add([]byte(Magic + "\x05\x01\x02"))
	f.Add([]byte("not a trace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad magic is a valid rejection
		}
		// Each record consumes at least one byte, so the stream must end
		// within len(data) accesses.
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
			if n > len(data) {
				t.Fatalf("decoded %d accesses from %d bytes", n, len(data))
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatal("Next returned an access after end of stream")
		}
	})
}
