// Package trace provides a compact binary format for recording and
// replaying memory-reference streams. The synthetic generators in
// package workload are deterministic, but recorded traces decouple an
// experiment from the generator version (replaying a trace pins the
// exact reference stream across code changes), cost less CPU on replay,
// and give a drop-in path for running real traces collected elsewhere
// (the paper drives its 128-core server workloads from PIN traces).
//
// Format (little-endian, after an 8-byte magic and a varint access
// count): one record per access — a varint instruction gap, one kind
// byte, and the block address as a zig-zag varint delta from the
// previous address, which compresses the streaming and looping patterns
// real traces exhibit.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/coher"
	"repro/internal/cpu"
)

// Magic identifies trace files; the trailing digit versions the format.
const Magic = "ZDEVTRC1"

// Writer streams accesses into a trace file.
type Writer struct {
	w        *bufio.Writer
	prevAddr int64
	count    uint64
	buf      [binary.MaxVarintLen64]byte
	err      error
}

// NewWriter begins a trace with an unknown access count; Close patches
// nothing (the count is written as a stream terminator record), so the
// writer works on non-seekable outputs.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one access.
func (t *Writer) Write(a cpu.Access) error {
	if t.err != nil {
		return t.err
	}
	t.putUvarint(uint64(a.Gap))
	t.byte(byte(a.Kind) + 1) // 0 is the end-of-stream marker
	delta := int64(a.Addr) - t.prevAddr
	t.putVarint(delta)
	t.prevAddr = int64(a.Addr)
	t.count++
	return t.err
}

// Close terminates and flushes the trace.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	t.byte(0) // end marker sits where a gap's first byte would...
	t.byte(0) // ...and a zero kind confirms it
	if err := t.w.Flush(); err != nil {
		return err
	}
	return nil
}

// Count reports accesses written so far.
func (t *Writer) Count() uint64 { return t.count }

func (t *Writer) byte(b byte) {
	if t.err == nil {
		t.err = t.w.WriteByte(b)
	}
}

func (t *Writer) putUvarint(v uint64) {
	if t.err == nil {
		n := binary.PutUvarint(t.buf[:], v)
		_, t.err = t.w.Write(t.buf[:n])
	}
}

func (t *Writer) putVarint(v int64) {
	if t.err == nil {
		n := binary.PutVarint(t.buf[:], v)
		_, t.err = t.w.Write(t.buf[:n])
	}
}

// Reader replays a trace; it implements cpu.Stream.
type Reader struct {
	r        *bufio.Reader
	prevAddr int64
	err      error
	done     bool
}

// NewReader validates the magic and prepares replay.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	return &Reader{r: br}, nil
}

// Next implements cpu.Stream.
func (t *Reader) Next() (cpu.Access, bool) {
	if t.done || t.err != nil {
		return cpu.Access{}, false
	}
	gap, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.fail(err)
		return cpu.Access{}, false
	}
	kind, err := t.r.ReadByte()
	if err != nil {
		t.fail(err)
		return cpu.Access{}, false
	}
	if kind == 0 {
		if gap != 0 {
			t.fail(fmt.Errorf("trace: corrupt end marker"))
		}
		t.done = true
		return cpu.Access{}, false
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		t.fail(err)
		return cpu.Access{}, false
	}
	t.prevAddr += delta
	return cpu.Access{
		Gap:  uint32(gap),
		Kind: cpu.OpKind(kind - 1),
		Addr: coher.Addr(t.prevAddr),
	}, true
}

// Err reports a decode error, if any; a cleanly terminated trace leaves
// it nil.
func (t *Reader) Err() error { return t.err }

func (t *Reader) fail(err error) {
	if t.err == nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		t.err = fmt.Errorf("trace: %w", err)
	}
	t.done = true
}

// Record drains up to n accesses from a stream into w (all of them when
// n < 0) and returns the count written.
func Record(w *Writer, s cpu.Stream, n int) (uint64, error) {
	for i := 0; n < 0 || i < n; i++ {
		a, ok := s.Next()
		if !ok {
			break
		}
		if err := w.Write(a); err != nil {
			return w.Count(), err
		}
	}
	return w.Count(), nil
}
