package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/coher"
	"repro/internal/cpu"
	"repro/internal/workload"
)

func roundTrip(t *testing.T, accs []cpu.Access) []cpu.Access {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []cpu.Access
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return out
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []struct {
		Gap  uint16
		Kind uint8
		Addr uint32
	}) bool {
		var accs []cpu.Access
		for _, r := range raw {
			accs = append(accs, cpu.Access{
				Gap:  uint32(r.Gap),
				Kind: cpu.OpKind(r.Kind % 3),
				Addr: coher.Addr(r.Addr),
			})
		}
		got := roundTrip(t, accs)
		if len(got) != len(accs) {
			return false
		}
		for i := range accs {
			if got[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordWorkloadAndReplay(t *testing.T) {
	prof := workload.MustGet("canneal")
	orig := workload.Threads(prof, 1, 2000, 8, 1)[0]
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	// Migratory read-modify-write pairs make the stream slightly longer
	// than the nominal access count.
	n, err := Record(w, orig, -1)
	if err != nil || n < 2000 {
		t.Fatalf("recorded %d accesses, err=%v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.Threads(prof, 1, 2000, 8, 1)[0]
	for i := 0; ; i++ {
		want, okw := ref.Next()
		got, okg := r.Next()
		if okw != okg {
			t.Fatalf("length mismatch at %d", i)
		}
		if !okw {
			break
		}
		if want != got {
			t.Fatalf("access %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(cpu.Access{Gap: 3, Kind: cpu.Load, Addr: 100})
	w.Close()
	raw := buf.Bytes()[:buf.Len()-3] // chop the terminator and tail
	r, err := NewReader(bytes.NewBuffer(raw))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Fatal("truncated trace must surface an error")
	}
}
