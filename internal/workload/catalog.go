package workload

import (
	"fmt"
	"sort"
)

// The catalog lists one profile per application the paper evaluates
// (Table II and Figs. 2, 21). Footprints are in blocks at scale 1
// (8 MB / 131072-block LLC, 256 KB / 4096-block L2 per core) and were
// chosen to reproduce the qualitative behaviour the paper reports for
// each application: directory pressure (xalancbmk), LLC-capacity
// sensitivity (vips, lu_ncb, 330.art, gcc.ppO2), migratory ownership
// bouncing (freqmine), streaming with negligible sharing (FFTW), and
// the per-suite shared-entry fractions of §III-C2 (PARSEC ~10%,
// SPLASH2X ~19%, SPEC OMP ~0.5%, FFTW ~0, CPU2017 rate ~9% from code).

// Footprint units: one block is 64 bytes, so kb is blocks-per-KB and mb
// blocks-per-MB. Code footprints below are written as N*kb*16, i.e.
// 16·N KB of hot code.
const (
	kb = 16
	mb = 16384
)

func p(name, suite string, priv, shared, code int, sharedFrac, writeFrac, sharedWrite, migratory, streaming float64) Profile {
	return Profile{
		Name: name, Suite: suite,
		PrivateBlocks: priv, SharedBlocks: shared, CodeBlocks: code,
		SharedFrac: sharedFrac, WriteFrac: writeFrac, SharedWriteFrac: sharedWrite,
		Migratory: migratory, Streaming: streaming,
		PrivateSkew: 1.05, SharedSkew: 0.85, CodeSkew: 1.3,
		IfetchFrac: 0.06, GapMean: 4,
	}
}

var catalog = buildCatalog()

func buildCatalog() map[string]Profile {
	list := []Profile{
		// --- PARSEC (multithreaded; ~10% of accesses shared) -------------
		p("blackscholes", "PARSEC", 2*mb, mb/4, 2*kb*16, 0.04, 0.20, 0.05, 0.00, 0.60),
		p("canneal", "PARSEC", 12*mb, 2*mb, 4*kb*16, 0.12, 0.15, 0.10, 0.02, 0.05),
		p("dedup", "PARSEC", 4*mb, mb, 6*kb*16, 0.15, 0.25, 0.20, 0.05, 0.30),
		p("facesim", "PARSEC", 6*mb, mb/2, 8*kb*16, 0.08, 0.30, 0.10, 0.01, 0.25),
		p("ferret", "PARSEC", 3*mb, mb/2, 8*kb*16, 0.10, 0.20, 0.12, 0.03, 0.20),
		p("fluidanimate", "PARSEC", 4*mb, mb/2, 4*kb*16, 0.10, 0.30, 0.15, 0.04, 0.15),
		p("freqmine", "PARSEC", 3*mb, 2*mb, 6*kb*16, 0.22, 0.25, 0.30, 0.45, 0.05),
		p("streamcluster", "PARSEC", 2*mb, 2*mb, 2*kb*16, 0.30, 0.05, 0.02, 0.00, 0.70),
		p("swaptions", "PARSEC", mb/2, mb/8, 3*kb*16, 0.03, 0.20, 0.05, 0.00, 0.10),
		p("vips", "PARSEC", 8*mb, mb/2, 8*kb*16, 0.06, 0.30, 0.10, 0.01, 0.10),

		// --- SPLASH2X (~19% shared) --------------------------------------
		p("fft", "SPLASH2X", 4*mb, 2*mb, 2*kb*16, 0.20, 0.25, 0.15, 0.02, 0.50),
		p("lu_cb", "SPLASH2X", 2*mb, mb, 2*kb*16, 0.18, 0.30, 0.10, 0.02, 0.20),
		p("lu_ncb", "SPLASH2X", 7*mb, 2*mb, 2*kb*16, 0.22, 0.30, 0.12, 0.02, 0.15),
		p("radix", "SPLASH2X", 6*mb, mb, 2*kb*16, 0.15, 0.40, 0.20, 0.01, 0.60),
		p("ocean_cp", "SPLASH2X", 8*mb, 3*mb, 2*kb*16, 0.25, 0.30, 0.15, 0.03, 0.35),
		p("radiosity", "SPLASH2X", 2*mb, mb, 4*kb*16, 0.22, 0.20, 0.18, 0.08, 0.05),
		p("raytrace", "SPLASH2X", 3*mb, 2*mb, 4*kb*16, 0.28, 0.10, 0.05, 0.02, 0.05),
		p("water_nsquared", "SPLASH2X", mb, mb/2, 2*kb*16, 0.20, 0.25, 0.20, 0.10, 0.05),
		p("water_spatial", "SPLASH2X", mb, mb/2, 2*kb*16, 0.16, 0.25, 0.15, 0.05, 0.05),

		// --- SPEC OMP (~0.5% shared) --------------------------------------
		p("312.swim", "SPECOMP", 10*mb, mb/8, 2*kb*16, 0.006, 0.30, 0.10, 0.00, 0.70),
		p("314.mgrid", "SPECOMP", 8*mb, mb/8, 2*kb*16, 0.005, 0.25, 0.10, 0.00, 0.60),
		p("316.applu", "SPECOMP", 6*mb, mb/8, 2*kb*16, 0.005, 0.30, 0.10, 0.00, 0.50),
		p("320.equake", "SPECOMP", 5*mb, mb/4, 2*kb*16, 0.008, 0.25, 0.10, 0.00, 0.30),
		p("324.apsi", "SPECOMP", 4*mb, mb/8, 2*kb*16, 0.004, 0.30, 0.10, 0.00, 0.40),
		p("330.art", "SPECOMP", 7*mb, mb/4, 1*kb*16, 0.006, 0.20, 0.05, 0.00, 0.20),

		// --- FFTW (negligible sharing, streaming transposes) --------------
		p("FFTW", "FFTW", 9*mb, mb/16, 1*kb*16, 0.002, 0.35, 0.05, 0.00, 0.75),
	}

	// --- SPEC CPU 2017 rate (single-threaded copies; ~9% shared entries
	// arise from code blocks, which are always cached in S state) --------
	type cpuApp struct {
		name        string
		priv        int
		code        int
		write, strm float64
	}
	cpuApps := []cpuApp{
		{"blender", 4 * mb, 10 * kb * 16, 0.25, 0.20},
		{"bwaves.1", 9 * mb, 2 * kb * 16, 0.30, 0.65},
		{"bwaves.2", 9 * mb, 2 * kb * 16, 0.30, 0.65},
		{"bwaves.3", 8 * mb, 2 * kb * 16, 0.30, 0.65},
		{"bwaves.4", 8 * mb, 2 * kb * 16, 0.30, 0.65},
		{"cactuBSSN", 6 * mb, 6 * kb * 16, 0.30, 0.45},
		{"cam4", 7 * mb, 12 * kb * 16, 0.28, 0.30},
		{"deepsjeng", 2 * mb, 4 * kb * 16, 0.20, 0.05},
		{"exchange2", mb / 4, 3 * kb * 16, 0.15, 0.02},
		{"fotonik3d", 10 * mb, 2 * kb * 16, 0.30, 0.70},
		{"gcc.pp", 5 * mb, 14 * kb * 16, 0.25, 0.10},
		{"gcc.ppO2", 8 * mb, 14 * kb * 16, 0.25, 0.10},
		{"gcc.ref32", 4 * mb, 14 * kb * 16, 0.25, 0.10},
		{"gcc.ref32O5", 5 * mb, 14 * kb * 16, 0.25, 0.10},
		{"gcc.smaller", 3 * mb, 14 * kb * 16, 0.25, 0.10},
		{"imagick", 2 * mb, 6 * kb * 16, 0.30, 0.40},
		{"lbm", 10 * mb, 1 * kb * 16, 0.45, 0.80},
		{"leela", mb, 4 * kb * 16, 0.15, 0.05},
		{"mcf", 12 * mb, 2 * kb * 16, 0.20, 0.10},
		{"nab", 2 * mb, 3 * kb * 16, 0.25, 0.20},
		{"namd", 2 * mb, 4 * kb * 16, 0.25, 0.25},
		{"omnetpp", 8 * mb, 8 * kb * 16, 0.25, 0.05},
		{"parest", 4 * mb, 6 * kb * 16, 0.28, 0.30},
		{"perl.check", 2 * mb, 10 * kb * 16, 0.25, 0.05},
		{"perl.diff", 2 * mb, 10 * kb * 16, 0.25, 0.05},
		{"perl.split", 3 * mb, 10 * kb * 16, 0.25, 0.05},
		{"povray", mb / 2, 6 * kb * 16, 0.20, 0.05},
		{"roms", 8 * mb, 3 * kb * 16, 0.30, 0.60},
		{"wrf", 6 * mb, 12 * kb * 16, 0.28, 0.40},
		{"x264.pass1", 3 * mb, 6 * kb * 16, 0.30, 0.35},
		{"x264.pass2", 3 * mb, 6 * kb * 16, 0.30, 0.35},
		{"x264.seek500", 4 * mb, 6 * kb * 16, 0.30, 0.35},
		{"xalancbmk", 11 * mb, 10 * kb * 16, 0.22, 0.04},
		{"xz.cld", 5 * mb, 3 * kb * 16, 0.30, 0.30},
		{"xz.docs", 4 * mb, 3 * kb * 16, 0.30, 0.30},
		{"xz.combined", 6 * mb, 3 * kb * 16, 0.30, 0.30},
	}
	for _, a := range cpuApps {
		pr := p(a.name, "CPU2017", a.priv, mb/32, a.code, 0.002, a.write, 0.05, 0, a.strm)
		pr.IfetchFrac = 0.10 // rate workloads touch code heavily
		if a.name == "xalancbmk" {
			// Pointer-chasing over a large, hot working set: the profile
			// the paper's Fig. 2 shows benefiting most from an unbounded
			// directory (3.2 core-cache misses per kilo-instruction saved).
			pr.PrivateSkew = 0.35
			pr.GapMean = 3
		}
		list = append(list, pr)
	}

	// --- Server workloads (128-core, 32 MB LLC; trace-replay in the
	// paper). Large shared footprints, heavy code, modest per-thread
	// private state. -----------------------------------------------------
	server := []Profile{
		p("SPECjbb", "SERVER", mb, 24*mb, 40*kb*16, 0.35, 0.25, 0.15, 0.05, 0.05),
		// Web serving: content popularity is strongly Zipfian, so the
		// shared working set is hot and highly co-shared.
		p("SPECWeb-B", "SERVER", mb/2, 8*mb, 48*kb*16, 0.40, 0.20, 0.10, 0.04, 0.05),
		p("SPECWeb-E", "SERVER", mb/2, 10*mb, 48*kb*16, 0.40, 0.20, 0.10, 0.04, 0.05),
		p("SPECWeb-S", "SERVER", mb, 12*mb, 48*kb*16, 0.45, 0.20, 0.12, 0.05, 0.05),
		p("TPC-C", "SERVER", mb, 32*mb, 32*kb*16, 0.50, 0.25, 0.20, 0.08, 0.05),
		p("TPC-E", "SERVER", mb, 28*mb, 32*kb*16, 0.45, 0.20, 0.15, 0.06, 0.05),
		p("TPC-H", "SERVER", 2*mb, 40*mb, 24*kb*16, 0.55, 0.10, 0.05, 0.02, 0.40),
	}
	for i := range server {
		server[i].IfetchFrac = 0.15
		// Server reference streams concentrate on hot shared structures
		// (buffer pools, lock tables, session state): a high shared skew
		// raises the instantaneous sharing degree of LLC-resident shared
		// blocks, which keeps the live spilled-entry population small —
		// the regime in which the paper's trace-driven server runs
		// operate (NoDir within ~1.4%). The SPECWeb trio serves Zipfian
		// content popularity and is hotter still.
		server[i].SharedSkew = 1.25
		if i >= 1 && i <= 3 { // SPECWeb-B/E/S
			server[i].SharedSkew = 1.5
		}
	}
	list = append(list, server...)

	m := make(map[string]Profile, len(list))
	for _, pr := range list {
		if _, dup := m[pr.Name]; dup {
			panic("workload: duplicate profile " + pr.Name)
		}
		m[pr.Name] = pr
	}
	return m
}

// Get returns the profile for an application name.
func Get(name string) (Profile, error) {
	pr, ok := catalog[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown application %q", name)
	}
	return pr, nil
}

// MustGet panics on unknown names; for harness presets validated by
// tests.
func MustGet(name string) Profile {
	pr, err := Get(name)
	if err != nil {
		panic(err)
	}
	return pr
}

// Suite returns the applications of a suite in deterministic order.
func Suite(suite string) []Profile {
	var out []Profile
	for _, pr := range catalog {
		if pr.Suite == suite {
			out = append(out, pr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Suites returns all suite names in evaluation order.
func Suites() []string {
	return []string{"PARSEC", "SPLASH2X", "SPECOMP", "FFTW", "CPU2017", "SERVER"}
}

// All returns every profile, sorted by suite then name.
func All() []Profile {
	var out []Profile
	for _, s := range Suites() {
		out = append(out, Suite(s)...)
	}
	return out
}

// HetMixes builds the paper's 36 heterogeneous 8-way CPU2017 mixes with
// equal application representation (§IV): mix Wi takes eight
// consecutive applications starting at a rotating offset with a
// coprime stride, cycling through the catalog.
func HetMixes(n, width int) [][]Profile {
	apps := Suite("CPU2017")
	mixes := make([][]Profile, n)
	for i := 0; i < n; i++ {
		mix := make([]Profile, width)
		for j := 0; j < width; j++ {
			// Latin-square style selection: mix i takes applications
			// i, i+5, i+10, ... (mod catalog). With the stride coprime to
			// the catalog size the mixes are pairwise distinct, no mix
			// repeats an application, and when n equals the catalog size
			// every application appears in exactly `width` mixes — the
			// paper's equal-representation requirement.
			mix[j] = apps[(i+j*5)%len(apps)]
		}
		mixes[i] = mix
	}
	return mixes
}
