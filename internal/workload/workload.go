// Package workload synthesizes memory-reference streams that stand in
// for the paper's benchmark suites (PARSEC, SPLASH2X, SPEC OMP, FFTW,
// SPEC CPU 2017 rate/heterogeneous, and the 128-core server workloads).
// Real traces are unavailable (repro note in DESIGN.md), so each
// application is described by a Profile fitted to the three axes that
// drive directory-eviction-victim behaviour:
//
//  1. live private footprint vs directory reach (DEV pressure),
//  2. sharing mix — fraction shared, write intensity, migratory
//     ownership bouncing (fused vs spilled split, forward rates),
//  3. reuse distance vs LLC capacity (sensitivity to LLC ways lost to
//     spilled entries).
//
// Streams are deterministic functions of (profile, seed); identical
// configurations replay identical simulations.
package workload

import (
	"repro/internal/coher"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Profile is a synthetic application description. Footprints are in
// 64-byte blocks at scale 1 (Table I sizing: 8 MB LLC, 256 KB L2).
type Profile struct {
	Name  string
	Suite string

	// PrivateBlocks is each thread's private data footprint.
	PrivateBlocks int
	// SharedBlocks is the process-wide shared data footprint.
	SharedBlocks int
	// CodeBlocks is the code footprint (always cached in S state).
	CodeBlocks int

	// SharedFrac is the fraction of data accesses to the shared region.
	SharedFrac float64
	// WriteFrac is the store fraction within private accesses.
	WriteFrac float64
	// SharedWriteFrac is the store fraction within shared accesses.
	SharedWriteFrac float64
	// Migratory is the fraction of shared accesses that follow a
	// read-modify-write pattern on a hot set, bouncing M ownership
	// between cores (freqmine-like behaviour).
	Migratory float64
	// Streaming is the fraction of private accesses that walk
	// sequentially with little reuse.
	Streaming float64

	// PrivateSkew, SharedSkew, CodeSkew are Zipf skews for block
	// selection (0 = uniform; larger = hotter subsets, shorter reuse
	// distance).
	PrivateSkew, SharedSkew, CodeSkew float64

	// IfetchFrac is the fraction of accesses that are instruction
	// fetches.
	IfetchFrac float64
	// GapMean is the mean number of non-memory instructions between
	// accesses.
	GapMean int
}

// regions of a process's address space. Bases are block addresses; each
// process occupies a disjoint 2^34-block area so workloads never alias.
const (
	processStride = 1 << 34
	codeOffset    = 0
	sharedOffset  = 1 << 30
	privateOffset = 2 << 30
	threadStride  = 1 << 24
)

// scaleDown shrinks a footprint by the configuration scale factor,
// keeping a floor so tiny scaled runs still exercise every region.
func scaleDown(blocks, scale int) int {
	v := blocks / scale
	if v < 16 {
		v = 16
	}
	return v
}

// gen is one thread's deterministic stream generator.
type gen struct {
	p       Profile
	rng     *sim.RNG
	left    int
	codeB   coher.Addr
	sharedB coher.Addr
	privB   coher.Addr

	codeN, sharedN, privN int
	// rotations decorrelate the set-index footprint of different
	// regions/processes/threads: without them every region starts at a
	// base with identical low-order bits, so the hot (low Zipf index)
	// blocks of all threads alias onto the same directory and LLC sets,
	// which real address-space layouts do not do.
	codeRot, sharedRot, privRot int
	migSet                      int // migratory hot-set size
	seqPtr                      int // streaming walk pointer

	// Zipf samplers for the four fixed (n, skew) pairs this thread draws
	// from; precomputing them hoists the per-draw transcendentals out of
	// the access loop without changing the streams (sim.ZipfGen is
	// bit-identical to sim.RNG.Zipf).
	zCode, zShared, zMig, zPriv sim.ZipfGen

	queued    cpu.Access
	hasQueued bool
}

// newGen builds the generator for thread `thread` of process `proc`.
func newGen(p Profile, proc, thread, accesses, scale int, rng *sim.RNG) *gen {
	base := coher.Addr((proc + 1) * processStride)
	g := &gen{
		p:       p,
		rng:     rng,
		left:    accesses,
		codeB:   base + codeOffset,
		sharedB: base + sharedOffset,
		privB:   base + privateOffset + coher.Addr(thread*threadStride),
		codeN:   scaleDown(p.CodeBlocks, scale),
		sharedN: scaleDown(p.SharedBlocks, scale),
		privN:   scaleDown(p.PrivateBlocks, scale),
	}
	// Region rotations must agree between threads of one process for the
	// regions they share, so they derive from (profile, process) alone.
	procH := hashName(p.Name) ^ (uint64(proc)+1)*0x9e3779b97f4a7c15
	g.codeRot = int(procH % uint64(g.codeN))
	g.sharedRot = int((procH >> 20) % uint64(g.sharedN))
	g.privRot = int(sim.NewRNG(procH^uint64(thread+1)).Uint64() % uint64(g.privN))
	g.migSet = g.sharedN / 32
	if g.migSet < 8 {
		g.migSet = 8
	}
	if g.migSet > g.sharedN {
		g.migSet = g.sharedN
	}
	g.zCode = sim.NewZipfGen(g.codeN, p.CodeSkew)
	g.zShared = sim.NewZipfGen(g.sharedN, p.SharedSkew)
	g.zMig = sim.NewZipfGen(g.migSet, 0.5)
	g.zPriv = sim.NewZipfGen(g.privN, p.PrivateSkew)
	return g
}

// Next implements cpu.Stream.
func (g *gen) Next() (cpu.Access, bool) {
	if g.hasQueued {
		g.hasQueued = false
		return g.queued, true
	}
	if g.left <= 0 {
		return cpu.Access{}, false
	}
	g.left--

	a := cpu.Access{Gap: uint32(g.rng.Intn(2*g.p.GapMean + 1))}
	switch {
	case g.rng.Bool(g.p.IfetchFrac):
		a.Kind = cpu.Ifetch
		a.Addr = g.codeB + g.rot(g.zCode.Draw(g.rng), g.codeRot, g.codeN)
	case g.rng.Bool(g.p.SharedFrac):
		a.Addr = g.sharedB + g.rot(g.zShared.Draw(g.rng), g.sharedRot, g.sharedN)
		if g.rng.Bool(g.p.Migratory) {
			// Migratory read-modify-write on a hot block: queue the store
			// so ownership bounces between the threads touching it.
			a.Addr = g.sharedB + g.rot(g.zMig.Draw(g.rng), g.sharedRot, g.sharedN)
			a.Kind = cpu.Load
			g.queued = cpu.Access{Gap: uint32(g.rng.Intn(g.p.GapMean + 1)), Kind: cpu.Store, Addr: a.Addr}
			g.hasQueued = true
		} else if g.rng.Bool(g.p.SharedWriteFrac) {
			a.Kind = cpu.Store
		} else {
			a.Kind = cpu.Load
		}
	default:
		if g.rng.Bool(g.p.Streaming) {
			a.Addr = g.privB + g.rot(g.seqPtr, g.privRot, g.privN)
			g.seqPtr = (g.seqPtr + 1) % g.privN
		} else {
			a.Addr = g.privB + g.rot(g.zPriv.Draw(g.rng), g.privRot, g.privN)
		}
		if g.rng.Bool(g.p.WriteFrac) {
			a.Kind = cpu.Store
		} else {
			a.Kind = cpu.Load
		}
	}
	return a, true
}

// rot maps a region-relative Zipf index to a block offset, applying the
// region rotation.
func (g *gen) rot(idx, rotation, n int) coher.Addr {
	return coher.Addr((idx + rotation) % n)
}

// Threads builds the per-core streams for a multithreaded run of p on n
// cores: one process whose threads share code and data regions.
func Threads(p Profile, n, accessesPerThread, scale int, seed uint64) []cpu.Stream {
	root := sim.NewRNG(seed ^ hashName(p.Name))
	out := make([]cpu.Stream, n)
	for t := 0; t < n; t++ {
		out[t] = newGen(p, 0, t, accessesPerThread, scale, root.Fork(uint64(t)+1))
	}
	return out
}

// Rate builds a homogeneous (rate-mode) multiprogrammed workload: n
// independent copies of p with fully disjoint address spaces.
func Rate(p Profile, n, accessesPerCopy, scale int, seed uint64) []cpu.Stream {
	root := sim.NewRNG(seed ^ hashName(p.Name))
	out := make([]cpu.Stream, n)
	for i := 0; i < n; i++ {
		out[i] = newGen(p, i, 0, accessesPerCopy, scale, root.Fork(uint64(i)+1))
	}
	return out
}

// Mix builds a heterogeneous multiprogrammed workload: one profile per
// core, disjoint address spaces.
func Mix(profiles []Profile, accessesPerCopy, scale int, seed uint64) []cpu.Stream {
	root := sim.NewRNG(seed)
	out := make([]cpu.Stream, len(profiles))
	for i, p := range profiles {
		out[i] = newGen(p, i, 0, accessesPerCopy, scale, root.Fork(uint64(i)+1^hashName(p.Name)))
	}
	return out
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
