package workload

import (
	"testing"

	"repro/internal/coher"
	"repro/internal/cpu"
)

func TestCatalogComplete(t *testing.T) {
	wantCounts := map[string]int{
		"PARSEC":   10,
		"SPLASH2X": 9,
		"SPECOMP":  6,
		"FFTW":     1,
		"CPU2017":  36,
		"SERVER":   7,
	}
	for suite, want := range wantCounts {
		apps := Suite(suite)
		if len(apps) != want {
			t.Errorf("%s has %d apps, want %d", suite, len(apps), want)
		}
		for _, p := range apps {
			if p.PrivateBlocks <= 0 || p.CodeBlocks <= 0 || p.GapMean <= 0 {
				t.Errorf("%s/%s has degenerate parameters: %+v", suite, p.Name, p)
			}
		}
	}
	if len(All()) != 10+9+6+1+36+7 {
		t.Fatalf("All() = %d profiles", len(All()))
	}
	if _, err := Get("no-such-app"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestPaperHighlightsPresent(t *testing.T) {
	// Applications the paper calls out by name must exist with the
	// behaviours DESIGN.md assigns them.
	fq := MustGet("freqmine")
	if fq.Migratory < 0.2 {
		t.Fatal("freqmine must be migratory-heavy (forwarded-request behaviour)")
	}
	xa := MustGet("xalancbmk")
	if xa.PrivateBlocks < 8*16384 {
		t.Fatal("xalancbmk must have a large private footprint (directory pressure)")
	}
	fftw := MustGet("FFTW")
	if fftw.SharedFrac > 0.01 {
		t.Fatal("FFTW sharing must be negligible")
	}
}

func TestDeterminism(t *testing.T) {
	p := MustGet("canneal")
	a := Threads(p, 4, 1000, 8, 42)
	b := Threads(p, 4, 1000, 8, 42)
	for th := 0; th < 4; th++ {
		for {
			x, okx := a[th].Next()
			y, oky := b[th].Next()
			if okx != oky {
				t.Fatal("stream lengths differ")
			}
			if !okx {
				break
			}
			if x != y {
				t.Fatalf("thread %d diverged: %+v vs %+v", th, x, y)
			}
		}
	}
	// A different seed diverges.
	c := Threads(p, 4, 1000, 8, 43)
	d := Threads(p, 4, 1000, 8, 42)
	same := true
	for i := 0; i < 100; i++ {
		x, _ := c[0].Next()
		y, _ := d[0].Next()
		if x != y {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// footprint walks a stream and reports the address regions touched.
func footprint(s cpu.Stream) (n int, addrs map[coher.Addr]bool) {
	addrs = map[coher.Addr]bool{}
	for {
		a, ok := s.Next()
		if !ok {
			return n, addrs
		}
		n++
		addrs[a.Addr] = true
	}
}

func TestThreadsShareRegions(t *testing.T) {
	p := MustGet("ocean_cp")
	streams := Threads(p, 2, 5000, 8, 1)
	_, a0 := footprint(streams[0])
	_, a1 := footprint(streams[1])
	common := 0
	for addr := range a0 {
		if a1[addr] {
			common++
		}
	}
	if common == 0 {
		t.Fatal("threads of one process must share addresses")
	}
}

func TestRateIsDisjoint(t *testing.T) {
	p := MustGet("mcf")
	streams := Rate(p, 2, 5000, 8, 1)
	_, a0 := footprint(streams[0])
	_, a1 := footprint(streams[1])
	for addr := range a0 {
		if a1[addr] {
			t.Fatalf("rate copies share address %#x", uint64(addr))
		}
	}
}

func TestScaleShrinksFootprint(t *testing.T) {
	p := MustGet("canneal")
	_, big := footprint(Threads(p, 1, 20000, 1, 1)[0])
	_, small := footprint(Threads(p, 1, 20000, 16, 1)[0])
	if len(small) >= len(big) {
		t.Fatalf("scale 16 footprint (%d) not smaller than scale 1 (%d)", len(small), len(big))
	}
}

func TestHetMixes(t *testing.T) {
	mixes := HetMixes(36, 8)
	if len(mixes) != 36 {
		t.Fatalf("%d mixes", len(mixes))
	}
	counts := map[string]int{}
	for _, m := range mixes {
		if len(m) != 8 {
			t.Fatalf("mix width %d", len(m))
		}
		for _, p := range m {
			counts[p.Name]++
		}
	}
	// Equal representation: every CPU2017 app appears with frequency
	// 36*8/36 = 8.
	for name, c := range counts {
		if c != 8 {
			t.Fatalf("app %s appears %d times, want 8 (equal representation)", name, c)
		}
	}
	// Mixes are pairwise distinct and never repeat an app internally.
	seen := map[string]bool{}
	for _, m := range mixes {
		key := ""
		inMix := map[string]bool{}
		for _, p := range m {
			key += p.Name + "|"
			if inMix[p.Name] {
				t.Fatalf("mix repeats application %s", p.Name)
			}
			inMix[p.Name] = true
		}
		if seen[key] {
			t.Fatalf("duplicate mix %s", key)
		}
		seen[key] = true
	}
}

func TestMigratoryQueuesStores(t *testing.T) {
	p := MustGet("freqmine")
	s := Threads(p, 1, 20000, 8, 1)[0]
	loads := map[coher.Addr]bool{}
	rmw := 0
	var prev *cpu.Access
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		if prev != nil && prev.Kind == cpu.Load && a.Kind == cpu.Store && a.Addr == prev.Addr {
			rmw++
		}
		cp := a
		prev = &cp
		if a.Kind == cpu.Load {
			loads[a.Addr] = true
		}
	}
	if rmw == 0 {
		t.Fatal("migratory read-modify-write pairs missing")
	}
}
